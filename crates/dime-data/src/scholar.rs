//! Synthetic Google Scholar pages (DESIGN.md substitution for the paper's
//! 200-page crawl).
//!
//! A page belongs to an *owner* researcher and mixes:
//!
//! * **mainstream publications** — owner + coauthors drawn from
//!   era-structured pools (eras share members, so the pubs connect into one
//!   large pivot partition under the paper's positive rules), venues from
//!   the owner's home subfields;
//! * **one-off publications** — fresh coauthors and an unusual (same-field)
//!   venue: correct entities that land in *small* partitions, the case that
//!   defeats clustering-based outlier detection (paper Exp-1);
//! * **garbled own publications** — the owner's name abbreviated beyond
//!   recognition: correct entities that the strictest negative rule
//!   wrongly flags (keeps precision realistically below 1);
//! * **mis-categorized publications** — three kinds mirroring the paper's
//!   anecdotes: a *garbled stranger* (no overlapping author at all, caught
//!   by `φ₁⁻`), a *same-name far-field* researcher (one overlapping author
//!   token, cross-field venue — caught by `φ₂⁻`/`φ₃⁻`), and a *same-name
//!   near-field* researcher (same field, different subfield — hard;
//!   often only caught by the title rule or not at all).
//!
//! Ground truth is the set of injected mis-categorized entity ids.

use crate::types::LabeledGroup;
use crate::vocab::{garble_name, sample_names, sample_words, FIELDS};
use dime_core::{GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
use dime_ontology::{NodeId, Ontology, ThemeModel};
use dime_text::TokenizerKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;
use std::sync::OnceLock;

/// Attribute indices of the Scholar schema (8 attributes, like the crawl).
pub mod attr {
    /// Publication title.
    pub const TITLE: usize = 0;
    /// Comma-separated author list.
    pub const AUTHORS: usize = 1;
    /// Publication year.
    pub const DATE: usize = 2;
    /// Venue name (maps into the venue ontology).
    pub const VENUE: usize = 3;
    /// Volume number.
    pub const VOLUME: usize = 4;
    /// Issue number.
    pub const ISSUE: usize = 5;
    /// Page range.
    pub const PAGES: usize = 6;
    /// Publisher.
    pub const PUBLISHER: usize = 7;
}

/// Configuration of one synthetic Scholar page.
#[derive(Debug, Clone)]
pub struct ScholarConfig {
    /// Number of correctly categorized mainstream publications.
    pub mainstream: usize,
    /// Number of correct one-off publications (small partitions).
    pub one_offs: usize,
    /// Number of the owner's own publications with a garbled name.
    pub garbled_own: usize,
    /// Mis-categorized publications by a garbled stranger (φ₁⁻ catches).
    pub err_garbled: usize,
    /// Mis-categorized publications by a same-name far-field researcher.
    pub err_far_field: usize,
    /// Mis-categorized publications by a same-name near-field researcher
    /// (hard cases).
    pub err_near_field: usize,
    /// Number of coauthor eras.
    pub eras: usize,
    /// Side-project clusters: mid-sized (14-publication) correct
    /// partitions with a dedicated team — these populate Table I's
    /// `[10, 100)` bucket.
    pub side_projects: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Publications per side-project cluster (fixed so page sizes stay
/// deterministic).
pub const SIDE_PROJECT_SIZE: usize = 14;

impl ScholarConfig {
    /// A mid-sized page: ~340 entities like the paper's average.
    pub fn default_page(seed: u64) -> Self {
        Self {
            mainstream: 300,
            one_offs: 18,
            garbled_own: 2,
            err_garbled: 8,
            err_far_field: 7,
            err_near_field: 5,
            eras: 4,
            side_projects: 1,
            seed,
        }
    }

    /// A small page for fast tests.
    pub fn small(seed: u64) -> Self {
        Self {
            mainstream: 40,
            one_offs: 4,
            garbled_own: 1,
            err_garbled: 3,
            err_far_field: 2,
            err_near_field: 1,
            eras: 2,
            side_projects: 0,
            seed,
        }
    }

    /// Scales every entity count to approximately `n` total entities.
    pub fn scaled_to(n: usize, seed: u64) -> Self {
        let base = Self::default_page(seed);
        let base_total = base.total();
        let f = n as f64 / base_total as f64;
        let s = |x: usize| ((x as f64 * f).round() as usize).max(1);
        Self {
            mainstream: s(base.mainstream),
            one_offs: s(base.one_offs),
            garbled_own: s(base.garbled_own),
            err_garbled: s(base.err_garbled),
            err_far_field: s(base.err_far_field),
            err_near_field: s(base.err_near_field),
            eras: base.eras,
            side_projects: base.side_projects,
            seed,
        }
    }

    /// Total entities the page will contain.
    pub fn total(&self) -> usize {
        self.mainstream
            + self.one_offs
            + self.garbled_own
            + self.err_garbled
            + self.err_far_field
            + self.err_near_field
            + self.side_projects * SIDE_PROJECT_SIZE
    }
}

/// The Scholar relation schema.
pub fn scholar_schema() -> Schema {
    Schema::new([
        ("Title", TokenizerKind::Words),
        ("Authors", TokenizerKind::List(',')),
        ("Date", TokenizerKind::Whole),
        ("Venue", TokenizerKind::Words),
        ("Volume", TokenizerKind::Whole),
        ("Issue", TokenizerKind::Whole),
        ("Pages", TokenizerKind::Whole),
        ("Publisher", TokenizerKind::Words),
    ])
}

/// Builds the venue ontology (root → field → subfield → venue), the shape
/// of Google Scholar Metrics in paper Figure 4.
pub fn venue_ontology() -> Ontology {
    let mut ont = Ontology::new("venue");
    for field in FIELDS {
        for sub in field.subfields {
            for v in sub.venues {
                ont.add_path(&[field.name, sub.name, v]);
            }
        }
    }
    ont
}

/// The corpus-level title theme model: one topic model fitted on a
/// balanced background corpus of titles from every field (the paper trains
/// its LDA hierarchies on whole datasets, not single pages), with one
/// super-theme per field. Pages map their titles into it by fold-in
/// inference.
pub struct TitleModel {
    model: ThemeModel,
    ontology: Arc<Ontology>,
    vocab: HashMap<String, u32>,
}

impl TitleModel {
    /// The process-wide shared instance (deterministic).
    pub fn shared() -> &'static TitleModel {
        static MODEL: OnceLock<TitleModel> = OnceLock::new();
        MODEL.get_or_init(TitleModel::build)
    }

    fn build() -> Self {
        use rand::rngs::StdRng as R;
        use rand::SeedableRng as S;
        let mut rng = R::seed_from_u64(0x717e);
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut docs: Vec<Vec<u32>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for (fi, field) in FIELDS.iter().enumerate() {
            for _ in 0..150 {
                let len = rng.gen_range(5..9);
                let words = sample_words(&mut rng, field.title_words, len);
                let doc: Vec<u32> = dime_text::tokenize_words(&words)
                    .into_iter()
                    .map(|w| {
                        let next = vocab.len() as u32;
                        *vocab.entry(w).or_insert(next)
                    })
                    .collect();
                docs.push(doc);
                labels.push(fi);
            }
        }
        let model =
            ThemeModel::fit_with_labels(&docs, &labels, vocab.len(), 2 * FIELDS.len(), 0x71a);
        let ontology = Arc::new(model.ontology().clone());
        Self { model, ontology, vocab }
    }

    /// The title hierarchy (root → field super-theme → topic).
    pub fn ontology(&self) -> Arc<Ontology> {
        Arc::clone(&self.ontology)
    }

    /// Maps a title to its theme node; `None` when no title word is known
    /// to the model.
    pub fn assign(&self, title: &str) -> Option<NodeId> {
        let words: Vec<u32> = dime_text::tokenize_words(title)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        if words.is_empty() {
            None
        } else {
            Some(self.model.assign(&words))
        }
    }
}

/// The paper's Scholar rule set (Section VI-A), resolved to our schema:
///
/// * `ϕ₁⁺: f_ov(Authors) ≥ 2`
/// * `ϕ₂⁺: f_ov(Authors) ≥ 1 ∧ f_on(Venue) ≥ 0.75`
/// * `φ₁⁻: f_ov(Authors) = 0`
/// * `φ₂⁻: f_ov(Authors) ≤ 1 ∧ f_on(Venue) ≤ 0.25`
/// * `φ₃⁻: f_ov(Authors) ≤ 1 ∧ f_on(Title) ≤ 0.34`
///
/// The paper's `φ₃⁻` threshold (0.25) is calibrated to *its* learned title
/// hierarchy; ours is three levels deep (root/theme/sub-theme), where
/// cross-theme similarity is exactly `2·1/(3+3) = 1/3`, so the equivalent
/// "different theme" cut-off is 0.34.
pub fn scholar_rules() -> (Vec<Rule>, Vec<Rule>) {
    let positive = vec![
        Rule::positive(vec![Predicate::new(attr::AUTHORS, SimilarityFn::Overlap, 2.0)]),
        Rule::positive(vec![
            Predicate::new(attr::AUTHORS, SimilarityFn::Overlap, 1.0),
            Predicate::new(attr::VENUE, SimilarityFn::Ontology, 0.75),
        ]),
    ];
    let negative = vec![
        Rule::negative(vec![Predicate::new(attr::AUTHORS, SimilarityFn::Overlap, 0.0)]),
        Rule::negative(vec![
            Predicate::new(attr::AUTHORS, SimilarityFn::Overlap, 1.0),
            Predicate::new(attr::VENUE, SimilarityFn::Ontology, 0.25),
        ]),
        Rule::negative(vec![
            Predicate::new(attr::AUTHORS, SimilarityFn::Overlap, 1.0),
            Predicate::new(attr::TITLE, SimilarityFn::Ontology, 0.34),
        ]),
    ];
    (positive, negative)
}

/// One raw publication row before group construction.
struct PubRow {
    title: String,
    authors: String,
    year: u32,
    venue: Option<&'static str>,
    publisher: &'static str,
    mis_categorized: bool,
}

/// Generates one synthetic Scholar page.
///
/// The returned group has the venue ontology attached to `Venue` and an
/// LDA theme hierarchy (learned from the page's own titles, as the paper
/// does for attributes without a curated ontology) attached to `Title`.
pub fn scholar_page(name: &str, cfg: &ScholarConfig) -> LabeledGroup {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Owners are computer scientists (field 0); mis-categorized entities
    // come from the other fields, mirroring the paper's examples.
    let field = &FIELDS[0];
    let owner = format!("{} owner{}", name.to_lowercase(), cfg.seed % 97);

    // Era-structured coauthor pools: consecutive eras share two members so
    // mainstream publications chain into one big partition.
    let pool = sample_names(&mut rng, 6 * cfg.eras + 2);
    // Names outside the era pools get a unique suffix: accidental full-name
    // collisions with era coauthors would smuggle noise into the pivot
    // partition and wreck the controlled precision/recall structure.
    let mut uniq_counter = 0usize;
    let mut fresh_names = |rng: &mut StdRng, n: usize| -> Vec<String> {
        sample_names(rng, n)
            .into_iter()
            .map(|name| {
                uniq_counter += 1;
                format!("{name} u{uniq_counter}")
            })
            .collect()
    };
    let eras: Vec<Vec<String>> =
        (0..cfg.eras).map(|e| pool[e * 6..(e * 6 + 8).min(pool.len())].to_vec()).collect();

    // The owner publishes mostly in two home subfields.
    let home_subs: Vec<usize> = {
        let a = rng.gen_range(0..field.subfields.len());
        let b = (a + 1) % field.subfields.len();
        vec![a, b]
    };

    let mut rows: Vec<PubRow> = Vec::with_capacity(cfg.total());
    let publishers = ["acm", "ieee", "springer", "elsevier", "vldb endowment"];

    // --- mainstream publications -----------------------------------------
    for i in 0..cfg.mainstream {
        let era = &eras[i * cfg.eras / cfg.mainstream.max(1)];
        let n_co = rng.gen_range(2..=4).min(era.len());
        let mut authors = vec![owner.clone()];
        let start = rng.gen_range(0..era.len());
        for k in 0..n_co {
            authors.push(era[(start + k) % era.len()].clone());
        }
        let sub = &field.subfields[home_subs[rng.gen_range(0..home_subs.len())]];
        rows.push(PubRow {
            title: {
                let n = rng.gen_range(5..9);
                sample_words(&mut rng, field.title_words, n)
            },
            authors: authors.join(", "),
            year: rng.gen_range(1995..2018),
            venue: Some(sub.venues[rng.gen_range(0..sub.venues.len())]),
            publisher: publishers[rng.gen_range(0..publishers.len())],
            mis_categorized: false,
        });
    }

    // --- one-off publications (correct, small partitions) -----------------
    for _ in 0..cfg.one_offs {
        let fresh = {
            let n = rng.gen_range(1..=3);
            fresh_names(&mut rng, n)
        };
        let mut authors = vec![owner.clone()];
        authors.extend(fresh);
        // A subfield the owner normally avoids (venue sim 0.5 to the
        // pivot), or — 30% of the time — an obscure workshop missing from
        // the ontology entirely (venue sim 0, the φ₂⁻ false-positive case
        // behind the paper's NR2 precision dips).
        let away: Vec<usize> =
            (0..field.subfields.len()).filter(|s| !home_subs.contains(s)).collect();
        let sub = &field.subfields[away[rng.gen_range(0..away.len())]];
        let venue = if rng.gen_bool(0.15) {
            None
        } else {
            Some(sub.venues[rng.gen_range(0..sub.venues.len())])
        };
        rows.push(PubRow {
            title: {
                let n = rng.gen_range(5..9);
                sample_words(&mut rng, field.title_words, n)
            },
            authors: authors.join(", "),
            year: rng.gen_range(1995..2018),
            venue,
            publisher: publishers[rng.gen_range(0..publishers.len())],
            mis_categorized: false,
        });
    }

    // --- side projects: mid-sized correct partitions -----------------------
    for _ in 0..cfg.side_projects {
        let team = fresh_names(&mut rng, 6);
        let away: Vec<usize> =
            (0..field.subfields.len()).filter(|s| !home_subs.contains(s)).collect();
        let sub = &field.subfields[away[rng.gen_range(0..away.len())]];
        for _ in 0..SIDE_PROJECT_SIZE {
            let mut authors = vec![owner.clone()];
            let start = rng.gen_range(0..team.len());
            for k in 0..rng.gen_range(2..=4usize) {
                authors.push(team[(start + k) % team.len()].clone());
            }
            rows.push(PubRow {
                title: {
                    let n = rng.gen_range(5..9);
                    sample_words(&mut rng, field.title_words, n)
                },
                authors: authors.join(", "),
                year: rng.gen_range(1995..2018),
                venue: Some(sub.venues[rng.gen_range(0..sub.venues.len())]),
                publisher: publishers[rng.gen_range(0..publishers.len())],
                mis_categorized: false,
            });
        }
    }

    // --- the owner's own pubs with a garbled name (correct, flagged) ------
    for _ in 0..cfg.garbled_own {
        let fresh = {
            let n = rng.gen_range(1..=2);
            fresh_names(&mut rng, n)
        };
        let mut authors = vec![garble_name(&mut rng, &owner)];
        authors.extend(fresh);
        let sub = &field.subfields[home_subs[0]];
        rows.push(PubRow {
            title: {
                let n = rng.gen_range(5..9);
                sample_words(&mut rng, field.title_words, n)
            },
            authors: authors.join(", "),
            year: rng.gen_range(1995..2018),
            venue: Some(sub.venues[rng.gen_range(0..sub.venues.len())]),
            publisher: publishers[rng.gen_range(0..publishers.len())],
            mis_categorized: false,
        });
    }

    // --- mis-categorized: garbled stranger (φ₁⁻ catches) ------------------
    // Half the garbled strangers are *computer scientists*: their venue and
    // title look exactly like the owner's own garbled publications, so
    // feature-based methods cannot separate the two — only the zero author
    // overlap (φ₁⁻) identifies them, at the cost of also flagging the
    // owner's garbled publications.
    let mut remaining = cfg.err_garbled;
    let mut garbled_idx = 0usize;
    while remaining > 0 {
        let burst = rng.gen_range(1..=2.min(remaining));
        let stranger_field = if garbled_idx.is_multiple_of(2) {
            &FIELDS[rng.gen_range(1..FIELDS.len())]
        } else {
            field
        };
        garbled_idx += 1;
        let strangers = fresh_names(&mut rng, 4);
        for _ in 0..burst {
            let mut authors: Vec<String> = strangers[..rng.gen_range(2..=4)].to_vec();
            authors[0] = garble_name(&mut rng, &owner); // near-miss name
            let sub = &stranger_field.subfields[rng.gen_range(0..stranger_field.subfields.len())];
            rows.push(PubRow {
                title: {
                    let n = rng.gen_range(5..9);
                    sample_words(&mut rng, stranger_field.title_words, n)
                },
                authors: authors.join(", "),
                year: rng.gen_range(1995..2018),
                venue: Some(sub.venues[rng.gen_range(0..sub.venues.len())]),
                publisher: publishers[rng.gen_range(0..publishers.len())],
                mis_categorized: true,
            });
        }
        remaining -= burst;
    }

    // --- mis-categorized: same-name far-field researcher (φ₂⁻/φ₃⁻) --------
    let mut remaining = cfg.err_far_field;
    while remaining > 0 {
        let burst = rng.gen_range(1..=2.min(remaining));
        let foreign_field = &FIELDS[rng.gen_range(1..FIELDS.len())];
        let colleagues = fresh_names(&mut rng, 5);
        for _ in 0..burst {
            let mut authors: Vec<String> = colleagues[..rng.gen_range(2..=4)].to_vec();
            authors.push(owner.clone()); // the namesake token
            let sub = &foreign_field.subfields[rng.gen_range(0..foreign_field.subfields.len())];
            rows.push(PubRow {
                title: {
                    let n = rng.gen_range(5..9);
                    sample_words(&mut rng, foreign_field.title_words, n)
                },
                authors: authors.join(", "),
                year: rng.gen_range(1995..2018),
                venue: Some(sub.venues[rng.gen_range(0..sub.venues.len())]),
                publisher: publishers[rng.gen_range(0..publishers.len())],
                mis_categorized: true,
            });
        }
        remaining -= burst;
    }

    // --- mis-categorized: same-name near-field researcher (hard) ----------
    let mut remaining = cfg.err_near_field;
    while remaining > 0 {
        let burst = rng.gen_range(1..=2.min(remaining));
        let colleagues = fresh_names(&mut rng, 5);
        // An interdisciplinary namesake: publishes in a CS venue (venue
        // similarity 0.5 > 0.25, so φ₂⁻ misses) but on foreign-field topics
        // — only the title theme rule φ₃⁻ can catch these.
        let foreign_field = &FIELDS[1 + (rng.gen::<u32>() as usize) % (FIELDS.len() - 1)];
        // Half the near-field namesakes write on computer-science topics:
        // those are indistinguishable from the owner's one-off publications
        // for every method — the shared recall ceiling.
        let title_field = if rng.gen_bool(0.5) { foreign_field } else { field };
        let away: Vec<usize> =
            (0..field.subfields.len()).filter(|s| !home_subs.contains(s)).collect();
        let sub = &field.subfields[away[rng.gen_range(0..away.len())]];
        for _ in 0..burst {
            // 2-4 authors total, matching the one-off distribution so list
            // length cannot leak the label.
            let mut authors: Vec<String> = colleagues[..rng.gen_range(1..=3)].to_vec();
            authors.push(owner.clone());
            rows.push(PubRow {
                title: {
                    let n = rng.gen_range(5..9);
                    sample_words(&mut rng, title_field.title_words, n)
                },
                authors: authors.join(", "),
                year: rng.gen_range(1995..2018),
                venue: Some(sub.venues[rng.gen_range(0..sub.venues.len())]),
                publisher: publishers[rng.gen_range(0..publishers.len())],
                mis_categorized: true,
            });
        }
        remaining -= burst;
    }

    // Shuffle rows so ids carry no label signal.
    for i in (1..rows.len()).rev() {
        rows.swap(i, rng.gen_range(0..=i));
    }

    build_group(name, rows, cfg.seed)
}

/// Assembles the rows into a [`Group`]: attaches the venue ontology, learns
/// the title theme hierarchy with LDA, and records ground truth.
fn build_group(name: &str, rows: Vec<PubRow>, seed: u64) -> LabeledGroup {
    let _ = seed;
    let venues = Arc::new(venue_ontology());

    // Map titles into the corpus-level theme model (one super-theme per
    // field): cross-field titles score 1/3 ≤ 0.34, so φ₃⁻ fires exactly on
    // foreign-topic publications.
    let title_model = TitleModel::shared();
    let title_ont = title_model.ontology();
    let title_nodes: Vec<Option<NodeId>> =
        rows.iter().map(|r| title_model.assign(&r.title)).collect();

    let mut b = GroupBuilder::new(scholar_schema());
    b.attach_ontology("Venue", Arc::clone(&venues));
    b.attach_ontology("Title", Arc::clone(&title_ont));
    let mut truth = HashSet::new();
    for (i, row) in rows.iter().enumerate() {
        let venue_node: Option<NodeId> = row.venue.and_then(|v| venues.lookup(v));
        let venue_str = row.venue.unwrap_or("unknown workshop");
        let volume = (row.year % 40 + 1).to_string();
        let issue = (row.year % 6 + 1).to_string();
        let pages = format!("{}-{}", row.year % 900 + 1, row.year % 900 + 13);
        let nodes = [title_nodes[i], None, None, venue_node, None, None, None, None];
        let id = b.add_entity_with_nodes(
            &[
                &row.title,
                &row.authors,
                &row.year.to_string(),
                venue_str,
                &volume,
                &issue,
                &pages,
                row.publisher,
            ],
            &nodes,
        );
        if row.mis_categorized {
            truth.insert(id);
        }
    }
    LabeledGroup { name: name.to_owned(), group: b.build(), truth }
}

/// The 20 page names of paper Figure 8 / Table I.
pub const PAGE_NAMES: &[&str] = &[
    "Jeffrey",
    "Wenfei",
    "Nan",
    "Cong",
    "Zhifeng",
    "Divyakant",
    "Francesco",
    "Samuel",
    "Tamer",
    "Juliana",
    "Ullman",
    "Divesh",
    "Gustavo",
    "Jennifer",
    "Anhai",
    "Torsten",
    "Marcelo",
    "Nikos",
    "Tim",
    "Laks",
];

/// Generates a corpus of `n_pages` pages with varied sizes and error mixes
/// (the "200 Google Scholar pages" of the paper's setup).
pub fn scholar_corpus(n_pages: usize, seed: u64) -> Vec<LabeledGroup> {
    (0..n_pages)
        .map(|i| {
            let name = PAGE_NAMES[i % PAGE_NAMES.len()];
            let mut cfg = ScholarConfig::default_page(seed.wrapping_add(i as u64 * 131));
            // Vary page size (the crawl averaged 340, max ~3000).
            let scale = 0.4 + (i % 7) as f64 * 0.25;
            cfg.mainstream = (cfg.mainstream as f64 * scale) as usize;
            cfg.one_offs = (cfg.one_offs as f64 * scale).ceil() as usize;
            cfg.err_garbled = 4 + (i % 7) * 2;
            cfg.err_far_field = 2 + (i % 5) * 2;
            cfg.err_near_field = 1 + i % 4;
            scholar_page(&format!("{name}{}", i / PAGE_NAMES.len()), &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::discover_fast;

    #[test]
    fn page_has_configured_counts() {
        let cfg = ScholarConfig::small(7);
        let lg = scholar_page("nan", &cfg);
        assert_eq!(lg.group.len(), cfg.total());
        assert_eq!(lg.truth.len(), cfg.err_garbled + cfg.err_far_field + cfg.err_near_field);
    }

    #[test]
    fn venues_map_into_ontology() {
        let cfg = ScholarConfig::small(3);
        let lg = scholar_page("nan", &cfg);
        let mapped =
            lg.group.entities().iter().filter(|e| e.value(attr::VENUE).node.is_some()).count();
        // Mainstream/error venues map; ~30% of one-offs use obscure
        // workshops that are deliberately missing from the ontology.
        assert!(mapped >= lg.group.len() - cfg.one_offs, "too few mapped: {mapped}");
        assert!(mapped > lg.group.len() / 2);
    }

    #[test]
    fn titles_have_theme_nodes() {
        let cfg = ScholarConfig::small(4);
        let lg = scholar_page("nan", &cfg);
        assert!(lg.group.entities().iter().all(|e| e.value(attr::TITLE).node.is_some()));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScholarConfig::small(11);
        let a = scholar_page("nan", &cfg);
        let b = scholar_page("nan", &cfg);
        assert_eq!(a.truth, b.truth);
        for (x, y) in a.group.entities().iter().zip(b.group.entities()) {
            assert_eq!(x.value(attr::AUTHORS).text, y.value(attr::AUTHORS).text);
        }
    }

    #[test]
    fn dime_discovers_most_injected_errors() {
        let cfg = ScholarConfig::small(42);
        let lg = scholar_page("nan", &cfg);
        let (pos, neg) = scholar_rules();
        let d = discover_fast(&lg.group, &pos, &neg);
        // The pivot must be the mainstream cluster (much larger than noise).
        assert!(d.pivot_members().len() >= cfg.mainstream / 2);
        // φ₁⁻ alone finds the garbled strangers.
        let step0 = d.at_step(0).unwrap();
        let caught_garbled = step0.iter().filter(|e| lg.truth.contains(e)).count();
        assert!(caught_garbled >= cfg.err_garbled, "step0 caught {caught_garbled}");
        // The full scrollbar reaches decent recall on the truth.
        let all = d.mis_categorized();
        let tp = all.iter().filter(|e| lg.truth.contains(e)).count();
        assert!(tp * 2 >= lg.truth.len(), "recall too low: {tp}/{}", lg.truth.len());
    }

    #[test]
    fn corpus_pages_vary() {
        let corpus = scholar_corpus(4, 9);
        assert_eq!(corpus.len(), 4);
        let sizes: HashSet<usize> = corpus.iter().map(|g| g.group.len()).collect();
        assert!(sizes.len() > 1, "pages should differ in size");
    }

    #[test]
    fn scaled_to_hits_target() {
        let cfg = ScholarConfig::scaled_to(500, 1);
        let total = cfg.total();
        assert!((450..=550).contains(&total), "total {total}");
    }
}
