//! DBGen-style large-group generator (paper Exp-5's 20k–100k scalability
//! table; substitution for the UT Austin `dbgen` tool, which produces
//! person records with typo-perturbed duplicates).
//!
//! A group consists of duplicate *clusters*: a base person record plus a
//! few perturbed copies (character typos, token drops, abbreviated names).
//! A small share of records are singleton "strangers" so negative rules
//! have something to flag. The entity-matching style rules in
//! [`dbgen_rules`] exercise the set-based and character-based signature
//! paths at scale.

use crate::types::LabeledGroup;
use crate::vocab::{sample_name, sample_words};
use dime_core::{GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
use dime_text::TokenizerKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Attribute indices of the DBGen schema.
pub mod attr {
    /// Person name.
    pub const NAME: usize = 0;
    /// Street address.
    pub const ADDRESS: usize = 1;
    /// City.
    pub const CITY: usize = 2;
    /// Phone number.
    pub const PHONE: usize = 3;
}

/// Configuration for a DBGen group.
#[derive(Debug, Clone, Copy)]
pub struct DbgenConfig {
    /// Total number of entities to generate.
    pub entities: usize,
    /// Average duplicates per cluster (including the base record).
    pub cluster_size: usize,
    /// Fraction of entities that are unrelated strangers.
    pub stranger_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DbgenConfig {
    /// A group of `n` entities with the defaults used in the scalability
    /// experiment.
    pub fn new(n: usize, seed: u64) -> Self {
        Self { entities: n, cluster_size: 6, stranger_fraction: 0.05, seed }
    }
}

/// The DBGen relation schema.
pub fn dbgen_schema() -> Schema {
    Schema::new([
        ("Name", TokenizerKind::Words),
        ("Address", TokenizerKind::Words),
        ("City", TokenizerKind::Whole),
        ("Phone", TokenizerKind::Whole),
    ])
}

/// Two positive and two negative entity-matching rules, as in the paper's
/// scalability experiment.
pub fn dbgen_rules() -> (Vec<Rule>, Vec<Rule>) {
    let positive = vec![
        Rule::positive(vec![
            Predicate::new(attr::NAME, SimilarityFn::Jaccard, 0.5),
            Predicate::new(attr::ADDRESS, SimilarityFn::Jaccard, 0.4),
        ]),
        Rule::positive(vec![
            Predicate::new(attr::NAME, SimilarityFn::EditSimilarity, 0.8),
            Predicate::new(attr::CITY, SimilarityFn::Jaccard, 1.0),
        ]),
    ];
    let negative = vec![
        Rule::negative(vec![Predicate::new(attr::NAME, SimilarityFn::Overlap, 0.0)]),
        Rule::negative(vec![
            Predicate::new(attr::NAME, SimilarityFn::Jaccard, 0.2),
            Predicate::new(attr::ADDRESS, SimilarityFn::Overlap, 0.0),
        ]),
    ];
    (positive, negative)
}

const STREET_WORDS: &[&str] = &[
    "main",
    "oak",
    "pine",
    "maple",
    "cedar",
    "elm",
    "washington",
    "lake",
    "hill",
    "park",
    "river",
    "spring",
    "north",
    "south",
    "east",
    "west",
    "highland",
    "forest",
    "sunset",
    "meadow",
    "street",
    "avenue",
    "road",
    "lane",
    "drive",
    "court",
    "boulevard",
];

const CITIES: &[&str] = &[
    "springfield",
    "riverton",
    "lakeside",
    "fairview",
    "georgetown",
    "arlington",
    "clinton",
    "salem",
    "madison",
    "oxford",
    "bristol",
    "dover",
    "hudson",
    "milton",
    "newport",
    "ashland",
];

/// Applies a typo to a string: substitute, delete, or transpose one char.
fn typo(rng: &mut StdRng, s: &str) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    match rng.gen_range(0..3u32) {
        0 => chars[i] = (b'a' + rng.gen_range(0..26u8)) as char,
        1 => {
            chars.remove(i);
        }
        _ => chars.swap(i, i + 1),
    }
    chars.into_iter().collect()
}

/// Generates a DBGen group of `cfg.entities` records.
///
/// Ground truth marks the stranger records (they "should not" be in this
/// deduplication group).
pub fn dbgen_group(cfg: &DbgenConfig) -> LabeledGroup {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.entities;
    let n_strangers = (n as f64 * cfg.stranger_fraction) as usize;
    let n_clustered = n - n_strangers;

    let mut b = GroupBuilder::new(dbgen_schema());
    let mut truth = HashSet::new();
    let mut made = 0usize;
    while made < n_clustered {
        let size = rng.gen_range(2..=cfg.cluster_size * 2 - 2).min(n_clustered - made).max(1);
        let name = sample_name(&mut rng);
        let addr = format!("{} {}", rng.gen_range(1..999), sample_words(&mut rng, STREET_WORDS, 2));
        let city = CITIES[rng.gen_range(0..CITIES.len())];
        let phone: String = format!("555-{:04}", rng.gen_range(0..10000));
        for k in 0..size {
            let (nm, ad) = if k == 0 {
                (name.clone(), addr.clone())
            } else {
                // Perturb: typo in name and/or address.
                let nm = if rng.gen_bool(0.6) { typo(&mut rng, &name) } else { name.clone() };
                let ad = if rng.gen_bool(0.5) { typo(&mut rng, &addr) } else { addr.clone() };
                (nm, ad)
            };
            b.add_entity(&[&nm, &ad, city, &phone]);
            made += 1;
        }
    }
    for _ in 0..n_strangers {
        let name = sample_name(&mut rng);
        let addr = format!("{} {}", rng.gen_range(1..999), sample_words(&mut rng, STREET_WORDS, 2));
        let city = CITIES[rng.gen_range(0..CITIES.len())];
        let id =
            b.add_entity(&[&name, &addr, city, &format!("555-{:04}", rng.gen_range(0..10000))]);
        truth.insert(id);
    }
    LabeledGroup { name: format!("dbgen-{n}"), group: b.build(), truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{discover_fast, discover_naive};

    #[test]
    fn generates_requested_size() {
        let lg = dbgen_group(&DbgenConfig::new(500, 3));
        assert_eq!(lg.group.len(), 500);
        assert_eq!(lg.truth.len(), 25);
    }

    #[test]
    fn duplicates_cluster_under_rules() {
        let lg = dbgen_group(&DbgenConfig::new(300, 4));
        let (pos, neg) = dbgen_rules();
        let d = discover_fast(&lg.group, &pos, &neg);
        // Clusters average ~6 records → far fewer partitions than entities.
        assert!(d.partitions.len() < 150, "{} partitions", d.partitions.len());
    }

    #[test]
    fn fast_equals_naive_on_dbgen() {
        let lg = dbgen_group(&DbgenConfig::new(120, 9));
        let (pos, neg) = dbgen_rules();
        assert_eq!(discover_fast(&lg.group, &pos, &neg), discover_naive(&lg.group, &pos, &neg));
    }

    #[test]
    fn typo_changes_but_preserves_length_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = typo(&mut rng, "springfield");
            assert!(t.len() >= 10 && t.len() <= 11);
        }
        assert_eq!(typo(&mut rng, "a"), "a");
    }
}
