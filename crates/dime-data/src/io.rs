//! JSON import/export: load groups from files and serialize discovery
//! reports, so the `dime` CLI can run on user data.
//!
//! Group document format:
//!
//! ```json
//! {
//!   "schema": [
//!     {"name": "Title",   "tokenizer": "words"},
//!     {"name": "Authors", "tokenizer": {"list": ","}},
//!     {"name": "Venue",   "tokenizer": "words"}
//!   ],
//!   "ontologies": {
//!     "Venue": [["computer science", "database", "sigmod"],
//!               ["computer science", "database", "vldb"]]
//!   },
//!   "entities": [
//!     {"Title": "…", "Authors": "a, b", "Venue": "SIGMOD"},
//!     ["…", "c, d", "VLDB"]
//!   ]
//! }
//! ```
//!
//! Entities may be objects keyed by attribute name (missing attributes
//! become empty values) or arrays in schema order. Ontologies are lists of
//! root-to-leaf paths; values are auto-mapped by exact whole-value or
//! per-token lookup.

use dime_core::{Discovery, Group, GroupBuilder, Schema};
use dime_ontology::Ontology;
use dime_text::TokenizerKind;
use serde_json::{json, Value};
use std::fmt;
use std::sync::Arc;

/// Errors from loading a group document.
#[derive(Debug)]
pub struct LoadError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group load error: {}", self.message)
    }
}

impl std::error::Error for LoadError {}

fn err<T>(message: impl Into<String>) -> Result<T, LoadError> {
    Err(LoadError { message: message.into() })
}

fn parse_tokenizer(v: Option<&Value>) -> Result<TokenizerKind, LoadError> {
    match v {
        None | Some(Value::Null) => Ok(TokenizerKind::Words),
        Some(Value::String(s)) => match s.as_str() {
            "words" => Ok(TokenizerKind::Words),
            "whole" => Ok(TokenizerKind::Whole),
            other => err(format!(
                "unknown tokenizer {other:?} (use \"words\", \"whole\", or {{\"list\": \",\"}})"
            )),
        },
        Some(Value::Object(o)) => match o.get("list") {
            // Accept exactly one character — anything else (empty string,
            // multi-char, non-string, missing key) is a parse error, never
            // a panic.
            Some(Value::String(d)) => {
                let mut chars = d.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(TokenizerKind::List(c)),
                    _ => {
                        err(format!("list tokenizer needs a single-character delimiter, got {d:?}"))
                    }
                }
            }
            _ => err("list tokenizer needs a single-character delimiter"),
        },
        Some(other) => err(format!("bad tokenizer spec: {other}")),
    }
}

/// Parses a JSON group document (see the module docs for the format).
pub fn load_group_json(input: &str) -> Result<Group, LoadError> {
    let doc: Value = match serde_json::from_str(input) {
        Ok(d) => d,
        Err(e) => return err(format!("invalid JSON: {e}")),
    };
    load_group_value(&doc)
}

/// Parses an already-decoded group document (the same format as
/// [`load_group_json`]) — the entry point for callers that receive the
/// document embedded in a larger JSON message, such as the `dime-serve`
/// wire protocol.
pub fn load_group_value(doc: &Value) -> Result<Group, LoadError> {
    let obj = match doc.as_object() {
        Some(o) => o,
        None => return err("group document must be a JSON object"),
    };
    let schema_docs = match obj.get("schema").and_then(Value::as_array) {
        Some(s) => s,
        None => return err("group document needs a \"schema\" array"),
    };
    if schema_docs.is_empty() {
        return err("schema must declare at least one attribute");
    }
    // Leak-free static names aren't possible here; Schema::new takes
    // &'static str, so build AttrDefs through the owned constructor below.
    let mut names: Vec<String> = Vec::with_capacity(schema_docs.len());
    let mut toks: Vec<TokenizerKind> = Vec::with_capacity(schema_docs.len());
    for (i, attr) in schema_docs.iter().enumerate() {
        let attr = match attr.as_object() {
            Some(a) => a,
            None => return err(format!("schema attribute {i} must be an object")),
        };
        match attr.get("name").and_then(Value::as_str) {
            Some(n) => names.push(n.to_string()),
            None => return err(format!("schema attribute {i} needs a string \"name\"")),
        }
        toks.push(parse_tokenizer(attr.get("tokenizer"))?);
    }
    let schema = Schema::from_owned(names.iter().cloned().zip(toks.iter().copied()));

    let mut builder = GroupBuilder::new(schema);
    match obj.get("ontologies") {
        None | Some(Value::Null) => {}
        Some(Value::Object(onts)) => {
            for (name, paths) in onts {
                if !names.contains(name) {
                    return err(format!("ontology for unknown attribute {name:?}"));
                }
                let paths = match paths.as_array() {
                    Some(p) => p,
                    None => return err(format!("ontology {name:?} must be a list of paths")),
                };
                let mut ont = Ontology::new(name);
                for path in paths {
                    let parts: Vec<&str> = match path.as_array() {
                        Some(p) => p.iter().filter_map(Value::as_str).collect(),
                        None => {
                            return err(format!(
                                "ontology {name:?}: each path must be an array of strings"
                            ))
                        }
                    };
                    if parts.len() != path.as_array().map_or(0, Vec::len) {
                        return err(format!(
                            "ontology {name:?}: each path must be an array of strings"
                        ));
                    }
                    ont.add_path(&parts);
                }
                builder.attach_ontology(name, Arc::new(ont));
            }
        }
        Some(other) => return err(format!("\"ontologies\" must be an object, got {other}")),
    }

    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    match obj.get("entities") {
        None | Some(Value::Null) => {}
        Some(Value::Array(rows)) => {
            for (i, row) in rows.iter().enumerate() {
                let values = entity_row_values(row, &name_refs)
                    .map_err(|e| LoadError { message: format!("entity {i}: {}", e.message) })?;
                let refs: Vec<&str> = values.iter().map(String::as_str).collect();
                builder.add_entity(&refs);
            }
        }
        Some(other) => return err(format!("\"entities\" must be an array, got {other}")),
    }
    Ok(builder.build())
}

/// Converts one entity row (an array in schema order, or an object keyed
/// by attribute name with missing attributes defaulting to empty) into the
/// attribute values expected by `GroupBuilder::add_entity`.
pub fn entity_row_values(row: &Value, names: &[&str]) -> Result<Vec<String>, LoadError> {
    match row {
        Value::Array(a) => {
            if a.len() != names.len() {
                return err(format!("expected {} values, got {}", names.len(), a.len()));
            }
            Ok(a.iter().map(value_to_string).collect())
        }
        Value::Object(o) => {
            Ok(names.iter().map(|n| o.get(*n).map(value_to_string).unwrap_or_default()).collect())
        }
        other => err(format!("expected object or array, got {other}")),
    }
}

fn value_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// Serializes a discovery result as a JSON report: partitions, the pivot,
/// and per-scrollbar-step flagged entities (with their raw values).
pub fn discovery_to_json(group: &Group, discovery: &Discovery) -> Value {
    let attr_names: Vec<&str> = group.schema().attrs().iter().map(|a| a.name.as_str()).collect();
    let entity_json = |id: usize| -> Value {
        let e = group.entity(id);
        let mut m = serde_json::Map::new();
        m.insert("id".into(), json!(id));
        for (k, name) in attr_names.iter().enumerate() {
            m.insert((*name).to_string(), json!(e.value(k).text));
        }
        Value::Object(m)
    };
    json!({
        "partitions": discovery.partitions,
        "pivot": discovery.pivot,
        "steps": discovery.steps.iter().map(|s| json!({
            "rules_applied": s.rules_applied,
            "flagged": s.flagged.iter().copied().collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
        "mis_categorized": discovery.mis_categorized().iter().map(|&id| entity_json(id)).collect::<Vec<_>>(),
        "witnesses": discovery.witnesses.iter().map(|w| json!({
            "partition": w.partition,
            "negative_rule": w.rule,
            "entity": w.entity,
            "pivot_entity": w.pivot_entity,
        })).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{discover_fast, parse_rules};

    const DOC: &str = r#"{
        "schema": [
            {"name": "Title", "tokenizer": "words"},
            {"name": "Authors", "tokenizer": {"list": ","}},
            {"name": "Venue", "tokenizer": "words"}
        ],
        "ontologies": {
            "Venue": [
                ["computer science", "database", "sigmod"],
                ["computer science", "database", "vldb"],
                ["chemical sciences", "general", "rsc advances"]
            ]
        },
        "entities": [
            {"Title": "data cleaning", "Authors": "ann, bob", "Venue": "SIGMOD"},
            {"Title": "data quality", "Authors": "ann, bob, carl", "Venue": "VLDB"},
            ["oxidative synthesis", "dora", "RSC Advances"]
        ]
    }"#;

    #[test]
    fn loads_group_and_runs_rules() {
        let group = load_group_json(DOC).unwrap();
        assert_eq!(group.len(), 3);
        assert!(group.entity(0).value(2).node.is_some(), "venue should auto-map");

        let rules = parse_rules(
            "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0",
            group.schema(),
        )
        .unwrap();
        let (pos, neg): (Vec<_>, Vec<_>) =
            rules.into_iter().partition(|r| r.polarity == dime_core::Polarity::Positive);
        let d = discover_fast(&group, &pos, &neg);
        assert_eq!(d.mis_categorized().into_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn object_rows_tolerate_missing_attributes() {
        let doc = r#"{
            "schema": [{"name": "A"}, {"name": "B"}],
            "entities": [{"A": "x"}]
        }"#;
        let g = load_group_json(doc).unwrap();
        assert_eq!(g.entity(0).value(1).tokens.len(), 0);
    }

    #[test]
    fn array_rows_must_match_arity() {
        let doc = r#"{
            "schema": [{"name": "A"}, {"name": "B"}],
            "entities": [["only one"]]
        }"#;
        let e = load_group_json(doc).unwrap_err();
        assert!(e.message.contains("expected 2 values"), "{e}");
    }

    #[test]
    fn rejects_unknown_tokenizer_and_attribute() {
        let doc = r#"{"schema": [{"name": "A", "tokenizer": "sorcery"}], "entities": []}"#;
        assert!(load_group_json(doc).is_err());
        let doc = r#"{"schema": [{"name": "A"}], "ontologies": {"B": []}, "entities": []}"#;
        assert!(load_group_json(doc).is_err());
    }

    #[test]
    fn malformed_list_delimiters_error_instead_of_panicking() {
        // Empty delimiter string.
        let doc = r#"{"schema": [{"name": "A", "tokenizer": {"list": ""}}], "entities": []}"#;
        let e = load_group_json(doc).unwrap_err();
        assert!(e.message.contains("single-character delimiter"), "{e}");
        // Multi-character delimiter.
        let doc = r#"{"schema": [{"name": "A", "tokenizer": {"list": ",,"}}], "entities": []}"#;
        let e = load_group_json(doc).unwrap_err();
        assert!(e.message.contains("single-character delimiter"), "{e}");
        // Non-string delimiter value.
        let doc = r#"{"schema": [{"name": "A", "tokenizer": {"list": 3}}], "entities": []}"#;
        assert!(load_group_json(doc).is_err());
        // A multi-byte single character is fine.
        let doc = r#"{"schema": [{"name": "A", "tokenizer": {"list": "—"}}], "entities": []}"#;
        assert!(load_group_json(doc).is_ok());
    }

    #[test]
    fn report_includes_flagged_values() {
        let group = load_group_json(DOC).unwrap();
        let rules = parse_rules(
            "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0",
            group.schema(),
        )
        .unwrap();
        let (pos, neg): (Vec<_>, Vec<_>) =
            rules.into_iter().partition(|r| r.polarity == dime_core::Polarity::Positive);
        let d = discover_fast(&group, &pos, &neg);
        let v = discovery_to_json(&group, &d);
        let flagged = v["mis_categorized"].as_array().unwrap();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0]["Authors"], "dora");
    }
}
