//! Word pools for the synthetic dataset generators.
//!
//! Names, per-field title vocabularies, venue taxonomies and product-theme
//! vocabularies. Everything is deterministic given an RNG, and large name
//! spaces are built combinatorially (first × last) so even 100k-entity
//! DBGen groups get distinct people.

use rand::Rng;

/// First names used for synthetic authors and DBGen persons.
pub const FIRST_NAMES: &[&str] = &[
    "wei", "nan", "jia", "li", "ming", "hao", "yun", "cheng", "xu", "guo", "feng", "tao", "jun",
    "anna", "boris", "carla", "david", "elena", "frank", "grace", "henry", "irene", "jack",
    "karen", "liam", "maria", "nora", "oscar", "paula", "quinn", "rosa", "sam", "tina", "ugo",
    "vera", "walt", "xena", "yuri", "zoe", "alan", "bella", "carl", "dina", "egon", "faye",
];

/// Last names used for synthetic authors and DBGen persons.
pub const LAST_NAMES: &[&str] = &[
    "tang", "li", "wang", "chen", "zhang", "feng", "hao", "liu", "zhao", "wu", "zhou", "xu", "sun",
    "ma", "zhu", "hu", "guo", "lin", "he", "gao", "smith", "jones", "brown", "miller", "davis",
    "garcia", "wilson", "moore", "taylor", "thomas", "lee", "white", "harris", "clark", "lewis",
    "walker", "hall", "young", "allen", "king", "wright", "scott", "green", "baker",
];

/// A research field with its own title vocabulary, subfields, and venues.
#[derive(Debug, Clone)]
pub struct Field {
    /// Display name, also the ontology node name at depth 2.
    pub name: &'static str,
    /// Subfields: ontology nodes at depth 3, each owning some venues.
    pub subfields: &'static [Subfield],
    /// Words typical for titles in this field.
    pub title_words: &'static [&'static str],
}

/// A subfield with its venues (ontology leaves at depth 4).
#[derive(Debug, Clone)]
pub struct Subfield {
    /// Display name.
    pub name: &'static str,
    /// Venue names.
    pub venues: &'static [&'static str],
}

/// The synthetic "Google Scholar Metrics" taxonomy (paper Figure 4 shape).
pub const FIELDS: &[Field] = &[
    Field {
        name: "computer science",
        subfields: &[
            Subfield {
                name: "database",
                venues: &[
                    "sigmod", "vldb", "icde", "pods", "edbt", "cikm", "tods", "vldbj", "tkde",
                ],
            },
            Subfield {
                name: "system",
                venues: &["icpads", "osdi", "sosp", "atc", "eurosys", "nsdi"],
            },
            Subfield { name: "information retrieval", venues: &["sigir", "wsdm", "ecir", "trec"] },
            Subfield {
                name: "machine learning",
                venues: &["icml", "nips", "kdd", "aaai", "ijcai"],
            },
            Subfield { name: "theory", venues: &["stoc", "focs", "soda", "icalp"] },
        ],
        title_words: &[
            "data",
            "query",
            "index",
            "cleaning",
            "entity",
            "matching",
            "distributed",
            "graph",
            "stream",
            "transaction",
            "join",
            "similarity",
            "crowdsourcing",
            "knowledge",
            "learning",
            "ranking",
            "retrieval",
            "parallel",
            "storage",
            "optimization",
            "scalable",
            "efficient",
            "system",
            "model",
            "clustering",
            "xml",
            "keyword",
        ],
    },
    Field {
        name: "chemical sciences",
        subfields: &[
            Subfield {
                name: "chemical sciences general",
                venues: &["rsc advances", "jacs", "angewandte chemie", "chemical reviews"],
            },
            Subfield {
                name: "organic chemistry",
                venues: &["organic letters", "journal of organic chemistry", "tetrahedron"],
            },
            Subfield {
                name: "materials chemistry",
                venues: &["chemistry of materials", "journal of materials chemistry"],
            },
        ],
        title_words: &[
            "oxidative",
            "synthesis",
            "catalytic",
            "polymer",
            "desulfurization",
            "extraction",
            "molecular",
            "compound",
            "reaction",
            "solvent",
            "crystal",
            "ligand",
            "oxidation",
            "membrane",
            "nanoparticle",
            "electrochemical",
            "thermal",
            "spectroscopy",
            "glycol",
            "aqueous",
            "ionic",
            "carbon",
        ],
    },
    Field {
        name: "life sciences",
        subfields: &[
            Subfield {
                name: "genetics",
                venues: &["nature genetics", "genome research", "plos genetics"],
            },
            Subfield {
                name: "neuroscience",
                venues: &["neuron", "journal of neuroscience", "nature neuroscience"],
            },
        ],
        title_words: &[
            "gene",
            "protein",
            "expression",
            "cell",
            "neural",
            "cortex",
            "genome",
            "sequencing",
            "receptor",
            "pathway",
            "mutation",
            "regulation",
            "synaptic",
            "cognitive",
            "clinical",
            "molecular",
            "tissue",
            "brain",
            "rna",
            "dna",
        ],
    },
    Field {
        name: "physics",
        subfields: &[
            Subfield {
                name: "condensed matter",
                venues: &["physical review b", "nature physics", "prl"],
            },
            Subfield {
                name: "astrophysics",
                venues: &["astrophysical journal", "mnras", "astronomy and astrophysics"],
            },
        ],
        title_words: &[
            "quantum",
            "lattice",
            "phonon",
            "superconductivity",
            "magnetization",
            "photon",
            "scattering",
            "spin",
            "entanglement",
            "plasma",
            "galaxy",
            "stellar",
            "accretion",
            "cosmological",
            "dark",
            "matter",
            "relativistic",
            "radiation",
            "spectrum",
            "orbital",
        ],
    },
    Field {
        name: "economics",
        subfields: &[
            Subfield {
                name: "microeconomics",
                venues: &[
                    "econometrica",
                    "american economic review",
                    "journal of political economy",
                ],
            },
            Subfield {
                name: "finance",
                venues: &["journal of finance", "review of financial studies"],
            },
        ],
        title_words: &[
            "market",
            "equilibrium",
            "auction",
            "incentive",
            "welfare",
            "taxation",
            "pricing",
            "liquidity",
            "volatility",
            "portfolio",
            "asset",
            "risk",
            "monetary",
            "inflation",
            "labor",
            "trade",
            "growth",
            "consumption",
            "elasticity",
            "contract",
        ],
    },
    Field {
        name: "engineering",
        subfields: &[
            Subfield { name: "signal processing", venues: &["icassp", "ieee tsp", "eusipco"] },
            Subfield { name: "control", venues: &["automatica", "ieee tac", "cdc"] },
        ],
        title_words: &[
            "signal",
            "filter",
            "control",
            "estimation",
            "adaptive",
            "nonlinear",
            "feedback",
            "robust",
            "frequency",
            "sensor",
            "noise",
            "tracking",
            "stability",
            "sampling",
            "detection",
            "fusion",
            "modulation",
            "spectrum",
        ],
    },
];

/// Amazon-like product categories: `(department, category, themes)` where
/// each theme is a vocabulary of description words.
pub struct ProductCategory {
    /// Department name (ontology depth 2).
    pub department: &'static str,
    /// Category name (ontology depth 3, the group being checked).
    pub name: &'static str,
    /// Title word pool.
    pub title_words: &'static [&'static str],
    /// Description themes — disjoint vocabularies that LDA can recover.
    pub themes: &'static [&'static [&'static str]],
}

/// The synthetic Amazon catalog.
pub const PRODUCT_CATEGORIES: &[ProductCategory] = &[
    ProductCategory {
        department: "electronics",
        name: "router",
        title_words: &[
            "wireless",
            "router",
            "broadband",
            "gigabit",
            "dual",
            "band",
            "wifi",
            "ethernet",
            "gateway",
            "mesh",
        ],
        themes: &[
            &[
                "internet",
                "connection",
                "shares",
                "ethernet",
                "wired",
                "users",
                "access",
                "network",
                "broadband",
                "firewall",
                "dsl",
                "cable",
                "port",
                "lan",
                "wan",
                "speed",
                "bandwidth",
                "signal",
                "coverage",
                "antenna",
            ],
            &[
                "setup",
                "easy",
                "install",
                "app",
                "parental",
                "controls",
                "guest",
                "security",
                "wpa",
                "encryption",
                "firmware",
                "update",
                "browser",
                "configuration",
                "wizard",
                "support",
                "warranty",
                "manual",
                "quick",
                "guide",
            ],
        ],
    },
    ProductCategory {
        department: "electronics",
        name: "adapter",
        title_words: &[
            "usb",
            "adapter",
            "ethernet",
            "lan",
            "converter",
            "hub",
            "port",
            "cable",
            "type",
            "hdmi",
        ],
        themes: &[
            &[
                "usb",
                "compatible",
                "powered",
                "plug",
                "play",
                "converter",
                "laptop",
                "desktop",
                "port",
                "device",
                "driver",
                "windows",
                "mac",
                "chipset",
                "transfer",
                "rate",
                "compact",
                "portable",
                "aluminum",
                "braided",
            ],
            &[
                "hdmi",
                "video",
                "output",
                "resolution",
                "display",
                "monitor",
                "projector",
                "audio",
                "sync",
                "mirror",
                "extend",
                "screen",
                "adapter",
                "male",
                "female",
                "gold",
                "plated",
                "connector",
                "signal",
                "stable",
            ],
        ],
    },
    ProductCategory {
        department: "beauty",
        name: "shampoo",
        title_words: &[
            "shampoo",
            "moisturizing",
            "volume",
            "repair",
            "natural",
            "organic",
            "keratin",
            "argan",
            "coconut",
            "daily",
        ],
        themes: &[
            &[
                "hair",
                "scalp",
                "moisture",
                "dry",
                "damaged",
                "repair",
                "shine",
                "smooth",
                "frizz",
                "color",
                "treated",
                "sulfate",
                "free",
                "paraben",
                "gentle",
                "cleansing",
                "nourish",
                "vitamins",
                "oils",
                "lather",
            ],
            &[
                "scent",
                "fragrance",
                "lavender",
                "fresh",
                "botanical",
                "extract",
                "aloe",
                "chamomile",
                "tea",
                "tree",
                "mint",
                "citrus",
                "relaxing",
                "spa",
                "salon",
                "quality",
                "silky",
                "soft",
                "healthy",
                "glow",
            ],
        ],
    },
    ProductCategory {
        department: "beauty",
        name: "lotion",
        title_words: &[
            "lotion",
            "body",
            "hydrating",
            "shea",
            "butter",
            "vitamin",
            "daily",
            "repair",
            "sensitive",
            "skin",
        ],
        themes: &[
            &[
                "skin",
                "hydration",
                "dry",
                "moisturizer",
                "absorbs",
                "greasy",
                "fragrance",
                "dermatologist",
                "tested",
                "sensitive",
                "hypoallergenic",
                "ceramides",
                "glycerin",
                "barrier",
                "repair",
                "soothing",
                "itch",
                "relief",
                "cream",
                "daily",
            ],
            &[
                "shea",
                "butter",
                "cocoa",
                "natural",
                "ingredients",
                "vitamin",
                "antioxidants",
                "nourishing",
                "radiant",
                "glow",
                "smooth",
                "soft",
                "elastic",
                "firming",
                "anti",
                "aging",
                "wrinkle",
                "spa",
                "luxurious",
                "rich",
            ],
        ],
    },
    ProductCategory {
        department: "home and kitchen",
        name: "blender",
        title_words: &[
            "blender",
            "high",
            "speed",
            "smoothie",
            "countertop",
            "personal",
            "glass",
            "stainless",
            "pro",
            "quiet",
        ],
        themes: &[
            &[
                "blend",
                "smoothie",
                "ice",
                "crush",
                "motor",
                "watt",
                "blades",
                "stainless",
                "steel",
                "pitcher",
                "speed",
                "settings",
                "pulse",
                "puree",
                "soup",
                "frozen",
                "fruit",
                "powerful",
                "torque",
                "jar",
            ],
            &[
                "dishwasher",
                "safe",
                "easy",
                "clean",
                "bpa",
                "free",
                "lid",
                "spout",
                "travel",
                "cup",
                "compact",
                "kitchen",
                "counter",
                "cord",
                "storage",
                "recipe",
                "book",
                "warranty",
                "base",
                "suction",
            ],
        ],
    },
    ProductCategory {
        department: "home and kitchen",
        name: "cookware",
        title_words: &[
            "cookware",
            "nonstick",
            "pan",
            "set",
            "skillet",
            "frying",
            "induction",
            "ceramic",
            "cast",
            "iron",
        ],
        themes: &[
            &[
                "nonstick",
                "coating",
                "scratch",
                "resistant",
                "even",
                "heat",
                "distribution",
                "aluminum",
                "induction",
                "compatible",
                "oven",
                "safe",
                "handle",
                "cool",
                "touch",
                "pour",
                "rim",
                "frying",
                "saute",
                "simmer",
            ],
            &[
                "ceramic",
                "toxin",
                "free",
                "pfoa",
                "ptfe",
                "healthy",
                "cooking",
                "durable",
                "granite",
                "finish",
                "lightweight",
                "ergonomic",
                "grip",
                "dishwasher",
                "care",
                "seasoning",
                "cast",
                "iron",
                "skillet",
                "heirloom",
            ],
        ],
    },
    ProductCategory {
        department: "toys and games",
        name: "building blocks",
        title_words: &[
            "building",
            "blocks",
            "set",
            "creative",
            "construction",
            "bricks",
            "classic",
            "pieces",
            "educational",
            "stem",
        ],
        themes: &[
            &[
                "pieces",
                "bricks",
                "compatible",
                "build",
                "creative",
                "imagination",
                "colors",
                "shapes",
                "instructions",
                "model",
                "castle",
                "vehicle",
                "city",
                "minifigure",
                "baseplate",
                "storage",
                "box",
                "ages",
                "gift",
                "collection",
            ],
            &[
                "educational",
                "stem",
                "learning",
                "motor",
                "skills",
                "develop",
                "hand",
                "eye",
                "coordination",
                "problem",
                "solving",
                "kids",
                "toddler",
                "safe",
                "nontoxic",
                "durable",
                "plastic",
                "rounded",
                "edges",
                "classroom",
            ],
        ],
    },
    ProductCategory {
        department: "sports and outdoors",
        name: "tent",
        title_words: &[
            "tent",
            "camping",
            "person",
            "backpacking",
            "waterproof",
            "dome",
            "instant",
            "family",
            "season",
            "lightweight",
        ],
        themes: &[
            &[
                "waterproof",
                "rainfly",
                "seams",
                "taped",
                "floor",
                "bathtub",
                "wind",
                "poles",
                "fiberglass",
                "aluminum",
                "stakes",
                "guylines",
                "vestibule",
                "footprint",
                "weather",
                "storm",
                "ventilation",
                "mesh",
                "condensation",
                "canopy",
            ],
            &[
                "setup",
                "minutes",
                "freestanding",
                "instant",
                "carry",
                "bag",
                "packed",
                "weight",
                "compact",
                "spacious",
                "interior",
                "height",
                "doors",
                "pockets",
                "gear",
                "loft",
                "lantern",
                "hook",
                "camping",
                "hiking",
            ],
        ],
    },
    ProductCategory {
        department: "sports and outdoors",
        name: "sleeping bag",
        title_words: &[
            "sleeping",
            "bag",
            "degree",
            "mummy",
            "down",
            "synthetic",
            "compression",
            "adult",
            "winter",
            "ultralight",
        ],
        themes: &[
            &[
                "temperature",
                "rating",
                "degree",
                "warmth",
                "insulation",
                "down",
                "fill",
                "synthetic",
                "loft",
                "baffles",
                "draft",
                "collar",
                "hood",
                "cinch",
                "thermal",
                "cold",
                "winter",
                "ripstop",
                "shell",
                "liner",
            ],
            &[
                "zipper",
                "snag",
                "free",
                "compression",
                "sack",
                "packs",
                "small",
                "lightweight",
                "roomy",
                "mummy",
                "rectangular",
                "footbox",
                "machine",
                "washable",
                "dries",
                "storage",
                "straps",
                "camping",
                "backpacking",
                "travel",
            ],
        ],
    },
    ProductCategory {
        department: "toys and games",
        name: "board game",
        title_words: &[
            "board", "game", "family", "party", "strategy", "card", "classic", "night", "players",
            "edition",
        ],
        themes: &[
            &[
                "players",
                "turns",
                "dice",
                "cards",
                "board",
                "strategy",
                "win",
                "points",
                "rules",
                "minutes",
                "playtime",
                "family",
                "night",
                "fun",
                "laugh",
                "party",
                "teams",
                "guess",
                "trivia",
                "challenge",
            ],
            &[
                "components",
                "quality",
                "tokens",
                "miniatures",
                "artwork",
                "illustrated",
                "expansion",
                "replayability",
                "cooperative",
                "competitive",
                "ages",
                "adult",
                "kids",
                "gift",
                "box",
                "insert",
                "rulebook",
                "setup",
                "quick",
                "learn",
            ],
        ],
    },
];

/// Generic words shared by *every* product category's titles and
/// descriptions — the cross-category vocabulary overlap that makes string
/// similarity noisy on real catalogs.
pub const GENERIC_PRODUCT_WORDS: &[&str] = &[
    "premium", "pro", "series", "pack", "new", "black", "white", "compact", "portable", "quality",
    "durable", "design", "perfect", "ideal", "home", "office", "travel", "gift", "value", "best",
    "top", "rated", "easy", "use", "includes", "features", "improved", "original", "classic",
    "modern",
];

/// Samples a full person name `"first last"`.
pub fn sample_name(rng: &mut impl Rng) -> String {
    let f = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let l = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
    format!("{f} {l}")
}

/// Samples `n` distinct person names.
pub fn sample_names(rng: &mut impl Rng, n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while out.len() < n {
        let name = sample_name(rng);
        if seen.insert(name.clone()) {
            out.push(name);
        }
    }
    out
}

/// Abbreviates a name the way sloppy bibliography records do:
/// `"nan tang"` → `"n. tang"` or `"nj tang"`.
pub fn garble_name(rng: &mut impl Rng, name: &str) -> String {
    let mut parts = name.split_whitespace();
    let first = parts.next().unwrap_or("x");
    let last = parts.next_back().unwrap_or("y");
    match rng.gen_range(0..3u32) {
        0 => format!("{}. {last}", &first[..1]),
        1 => format!("{}{} {last}", &first[..1], &last[..1]),
        _ => format!("{last} {first}"),
    }
}

/// Samples `len` words from a pool, joined by spaces.
pub fn sample_words(rng: &mut impl Rng, pool: &[&str], len: usize) -> String {
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn name_sampling_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = sample_name(&mut rng);
        assert_eq!(n.split_whitespace().count(), 2);
    }

    #[test]
    fn sample_names_are_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let names = sample_names(&mut rng, 50);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn garbled_names_differ_but_keep_a_token() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = garble_name(&mut rng, "nan tang");
            assert_ne!(g, "nan tang");
            assert!(g.contains("tang") || g.contains("nan"), "{g}");
        }
    }

    #[test]
    fn fields_have_nonempty_structure() {
        for f in FIELDS {
            assert!(!f.subfields.is_empty());
            assert!(f.title_words.len() >= 10);
            for s in f.subfields {
                assert!(!s.venues.is_empty());
            }
        }
    }

    #[test]
    fn product_categories_have_two_themes() {
        for c in PRODUCT_CATEGORIES {
            assert!(c.themes.len() >= 2, "{}", c.name);
            assert!(c.themes.iter().all(|t| t.len() >= 15));
        }
    }

    #[test]
    fn sample_words_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = sample_words(&mut rng, &["a", "b"], 5);
        assert_eq!(w.split_whitespace().count(), 5);
    }
}
