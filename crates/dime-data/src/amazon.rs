//! Synthetic Amazon product categories (DESIGN.md substitution for the
//! McAuley product dump).
//!
//! Products inside a category form overlapping *co-purchase cliques*: each
//! product's `Also_bought` / `Also_viewed` lists reference ASINs of its own
//! clique plus a couple from a neighbouring clique, so correct products
//! chain into one large pivot partition under the paper's positive rules
//! `ϕ₃⁺…ϕ₅⁺`. Descriptions are bags of words drawn from per-category theme
//! vocabularies, and the `Description` ontology is learned at build time
//! with LDA, exactly as the paper does.
//!
//! Error injection (paper Section VI-A): products of *sibling* categories
//! are moved into the group at rate `e%`. Easy errors keep their foreign
//! co-purchase lists and foreign descriptions; *hard* errors — whose share
//! grows with `e%` — additionally pick up a couple of target-category
//! `Also_viewed` ASINs and mix target-theme words into their descriptions,
//! which is what drags every method's recall down at high error rates.

use crate::types::LabeledGroup;
use crate::vocab::{GENERIC_PRODUCT_WORDS, PRODUCT_CATEGORIES};
use dime_core::{GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
use dime_ontology::{NodeId, Ontology, ThemeModel};
use dime_text::TokenizerKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::sync::OnceLock;

/// Attribute indices of the Amazon schema.
pub mod attr {
    /// Product id.
    pub const ASIN: usize = 0;
    /// Product name.
    pub const TITLE: usize = 1;
    /// Brand name.
    pub const BRAND: usize = 2;
    /// ASINs bought together with this one.
    pub const ALSO_BOUGHT: usize = 3;
    /// ASINs viewed together with this one.
    pub const ALSO_VIEWED: usize = 4;
    /// ASINs in the same checkout basket.
    pub const BOUGHT_TOGETHER: usize = 5;
    /// ASINs bought after viewing this one.
    pub const BUY_AFTER_VIEWING: usize = 6;
    /// Free-text description (ontology learned by LDA).
    pub const DESCRIPTION: usize = 7;
}

/// Configuration of one synthetic category group.
#[derive(Debug, Clone)]
pub struct AmazonConfig {
    /// Index into [`PRODUCT_CATEGORIES`] for the target category.
    pub category: usize,
    /// Number of correctly categorized products.
    pub products: usize,
    /// Error rate `e` in `[0, 1)`: fraction of the final group that is
    /// mis-categorized.
    pub error_rate: f64,
    /// Co-purchase clique size.
    pub clique: usize,
    /// Niche correct products: tiny isolated co-purchase cliques with
    /// short, ambiguous descriptions — the realistic false-positive source
    /// that keeps DIME's precision below 1.0.
    pub niche: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AmazonConfig {
    /// A category of `products` correct entities at error rate `e`.
    pub fn new(category: usize, products: usize, error_rate: f64, seed: u64) -> Self {
        Self { category, products, error_rate, clique: 8, niche: (products / 20).max(2), seed }
    }

    /// Number of mis-categorized products to inject so the final group has
    /// the configured error rate.
    pub fn n_errors(&self) -> usize {
        ((self.products as f64 * self.error_rate) / (1.0 - self.error_rate)).round() as usize
    }
}

/// The Amazon relation schema (8 attributes, like the dump).
pub fn amazon_schema() -> Schema {
    Schema::new([
        ("Asin", TokenizerKind::Whole),
        ("Title", TokenizerKind::Words),
        ("Brand", TokenizerKind::Whole),
        ("Also_bought", TokenizerKind::List(',')),
        ("Also_viewed", TokenizerKind::List(',')),
        ("Bought_together", TokenizerKind::List(',')),
        ("Buy_after_viewing", TokenizerKind::List(',')),
        ("Description", TokenizerKind::Words),
    ])
}

/// The paper's Amazon rule set (Section VI-A):
///
/// * `ϕ₃⁺: f_ov(Also_bought) ≥ 2 ∧ f_ov(Also_viewed) ≥ 2`
/// * `ϕ₄⁺: f_ov(Bought_together) ≥ 1 ∧ f_on(Description) ≥ 0.75`
/// * `ϕ₅⁺: f_ov(Buy_after_viewing) ≥ 1 ∧ f_on(Description) ≥ 0.75`
/// * `φ₄⁻: f_ov(Also_bought) = 0 ∧ f_on(Description) ≤ 0.5`
/// * `φ₅⁻: f_ov(Also_viewed) = 0 ∧ f_on(Description) ≤ 0.5`
pub fn amazon_rules() -> (Vec<Rule>, Vec<Rule>) {
    let positive = vec![
        Rule::positive(vec![
            Predicate::new(attr::ALSO_BOUGHT, SimilarityFn::Overlap, 2.0),
            Predicate::new(attr::ALSO_VIEWED, SimilarityFn::Overlap, 2.0),
        ]),
        Rule::positive(vec![
            Predicate::new(attr::BOUGHT_TOGETHER, SimilarityFn::Overlap, 1.0),
            Predicate::new(attr::DESCRIPTION, SimilarityFn::Ontology, 0.75),
        ]),
        Rule::positive(vec![
            Predicate::new(attr::BUY_AFTER_VIEWING, SimilarityFn::Overlap, 1.0),
            Predicate::new(attr::DESCRIPTION, SimilarityFn::Ontology, 0.75),
        ]),
    ];
    let negative = vec![
        Rule::negative(vec![
            Predicate::new(attr::ALSO_BOUGHT, SimilarityFn::Overlap, 0.0),
            Predicate::new(attr::DESCRIPTION, SimilarityFn::Ontology, 0.5),
        ]),
        Rule::negative(vec![
            Predicate::new(attr::ALSO_VIEWED, SimilarityFn::Overlap, 0.0),
            Predicate::new(attr::DESCRIPTION, SimilarityFn::Ontology, 0.5),
        ]),
    ];
    (positive, negative)
}

/// The corpus-level description theme model: fitted once on a balanced
/// background corpus of descriptions from every catalog category, one
/// super-theme per category. Groups map their products' descriptions into
/// it by fold-in inference (the paper's LDA hierarchies are corpus-level).
pub struct DescriptionModel {
    model: ThemeModel,
    ontology: Arc<Ontology>,
    vocab: HashMap<String, u32>,
}

impl DescriptionModel {
    /// The process-wide shared instance (deterministic).
    pub fn shared() -> &'static DescriptionModel {
        static MODEL: OnceLock<DescriptionModel> = OnceLock::new();
        MODEL.get_or_init(DescriptionModel::build)
    }

    fn build() -> Self {
        let mut rng = StdRng::seed_from_u64(0xde5c);
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut docs: Vec<Vec<u32>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for (ci, cat) in PRODUCT_CATEGORIES.iter().enumerate() {
            let v = DescVocab::of(cat);
            for i in 0..120 {
                let len = rng.gen_range(15..25);
                let text = v.sample(&mut rng, i, len, None, 0.0);
                let doc: Vec<u32> = dime_text::tokenize_words(&text)
                    .into_iter()
                    .map(|w| {
                        let next = vocab.len() as u32;
                        *vocab.entry(w).or_insert(next)
                    })
                    .collect();
                docs.push(doc);
                labels.push(ci);
            }
        }
        let model = ThemeModel::fit_with_labels(
            &docs,
            &labels,
            vocab.len(),
            2 * PRODUCT_CATEGORIES.len(),
            0xa3a,
        );
        let ontology = Arc::new(model.ontology().clone());
        Self { model, ontology, vocab }
    }

    /// The description hierarchy (root → category super-theme → topic).
    pub fn ontology(&self) -> Arc<Ontology> {
        Arc::clone(&self.ontology)
    }

    /// Maps a description to its theme node; `None` when no word is known.
    pub fn assign(&self, description: &str) -> Option<NodeId> {
        let words: Vec<u32> = dime_text::tokenize_words(description)
            .iter()
            .filter_map(|w| self.vocab.get(w).copied())
            .collect();
        if words.is_empty() {
            None
        } else {
            Some(self.model.assign(&words))
        }
    }
}

struct ProductRow {
    asin: String,
    title: String,
    brand: String,
    also_bought: String,
    also_viewed: String,
    bought_together: String,
    buy_after_viewing: String,
    description: String,
    mis_categorized: bool,
}

/// Samples a product title: ~40% generic catalog words, the rest from the
/// category pool.
fn product_title(rng: &mut StdRng, pool: &[&str]) -> String {
    let len = rng.gen_range(4..7);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.4) {
                GENERIC_PRODUCT_WORDS[rng.gen_range(0..GENERIC_PRODUCT_WORDS.len())]
            } else {
                pool[rng.gen_range(0..pool.len())]
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn make_asin(category: usize, idx: usize) -> String {
    format!("b{category:02x}{idx:06x}")
}

/// Draws `n` distinct ASINs from a clique-biased pool: mostly the own
/// clique, occasionally the next clique over.
fn co_purchase_list(
    rng: &mut StdRng,
    asins: &[String],
    clique: usize,
    clique_size: usize,
    n: usize,
    cross: usize,
) -> Vec<String> {
    let n_cliques = asins.len().div_ceil(clique_size).max(1);
    let mut picked: HashSet<usize> = HashSet::new();
    let mut out = Vec::with_capacity(n + cross);
    let from_clique = |rng: &mut StdRng, c: usize, picked: &mut HashSet<usize>| {
        let lo = (c % n_cliques) * clique_size;
        let hi = (lo + clique_size).min(asins.len());
        if lo >= hi {
            return None;
        }
        for _ in 0..8 {
            let i = rng.gen_range(lo..hi);
            if picked.insert(i) {
                return Some(i);
            }
        }
        None
    };
    for _ in 0..n {
        if let Some(i) = from_clique(rng, clique, &mut picked) {
            out.push(asins[i].clone());
        }
    }
    for _ in 0..cross {
        if let Some(i) = from_clique(rng, clique + 1, &mut picked) {
            out.push(asins[i].clone());
        }
    }
    out
}

/// The vocabulary structure of one category's descriptions: a shared
/// *core* pool (the first half of each theme list) and per-theme specific
/// pools (the second halves). Category documents mix core and specific
/// words, so LDA reliably groups them under one top-level theme and splits
/// the sub-themes below it.
struct DescVocab {
    core: Vec<&'static str>,
    specific: Vec<Vec<&'static str>>,
}

impl DescVocab {
    fn of(cat: &crate::vocab::ProductCategory) -> Self {
        let mut core = Vec::new();
        let mut specific = Vec::new();
        for theme in cat.themes {
            let half = theme.len() / 2;
            core.extend_from_slice(&theme[..half]);
            specific.push(theme[half..].to_vec());
        }
        Self { core, specific }
    }

    /// Samples a description of `len` words for sub-theme `theme`:
    /// `foreign_mix` of the words come from `foreign.core` instead.
    fn sample(
        &self,
        rng: &mut StdRng,
        theme: usize,
        len: usize,
        foreign: Option<&DescVocab>,
        foreign_mix: f64,
    ) -> String {
        let spec = &self.specific[theme % self.specific.len()];
        let mut words = Vec::with_capacity(len);
        for _ in 0..len {
            // A quarter of description words are generic catalog filler.
            if rng.gen_bool(0.25) {
                words.push(GENERIC_PRODUCT_WORDS[rng.gen_range(0..GENERIC_PRODUCT_WORDS.len())]);
                continue;
            }
            if let Some(f) = foreign {
                if rng.gen::<f64>() < foreign_mix {
                    words.push(f.core[rng.gen_range(0..f.core.len())]);
                    continue;
                }
            }
            let pool: &[&str] = if rng.gen_bool(0.5) { &self.core } else { spec };
            words.push(pool[rng.gen_range(0..pool.len())]);
        }
        words.join(" ")
    }
}

/// Generates one synthetic Amazon category with injected mis-categorized
/// products.
pub fn amazon_category(cfg: &AmazonConfig) -> LabeledGroup {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cat = &PRODUCT_CATEGORIES[cfg.category % PRODUCT_CATEGORIES.len()];
    let n_errors = cfg.n_errors();

    // Sibling category (same department first, else any other).
    let sibling_idx = PRODUCT_CATEGORIES
        .iter()
        .enumerate()
        .find(|(i, c)| *i != cfg.category && c.department == cat.department)
        .map(|(i, _)| i)
        .unwrap_or((cfg.category + 1) % PRODUCT_CATEGORIES.len());
    let sibling = &PRODUCT_CATEGORIES[sibling_idx];

    // ASIN pools. Correct products reference the target pool; errors
    // reference their own foreign pool.
    let own_asins: Vec<String> = (0..cfg.products).map(|i| make_asin(cfg.category, i)).collect();
    let foreign_asins: Vec<String> =
        (0..n_errors.max(cfg.clique)).map(|i| make_asin(sibling_idx + 0x40, i)).collect();
    // Hard errors co-purchase within their own pool: if they shared cliques
    // with easy errors, partition-level flagging would sweep them up via an
    // easy clique-mate.
    let hard_asins: Vec<String> =
        (0..n_errors.max(cfg.clique)).map(|i| make_asin(sibling_idx + 0x60, i)).collect();

    let brands = ["acme", "zenbrand", "nordix", "kaiko", "verra", "optilon"];
    let own_vocab = DescVocab::of(cat);
    let foreign_vocab = DescVocab::of(sibling);
    let mut rows: Vec<ProductRow> = Vec::with_capacity(cfg.products + cfg.niche * 3 + n_errors);

    for (i, asin) in own_asins.iter().enumerate() {
        let clique = i / cfg.clique;
        rows.push(ProductRow {
            asin: asin.clone(),
            title: product_title(&mut rng, cat.title_words),
            brand: brands[rng.gen_range(0..brands.len())].to_owned(),
            also_bought: co_purchase_list(&mut rng, &own_asins, clique, cfg.clique, 5, 3)
                .join(", "),
            also_viewed: co_purchase_list(&mut rng, &own_asins, clique, cfg.clique, 5, 3)
                .join(", "),
            bought_together: co_purchase_list(&mut rng, &own_asins, clique, cfg.clique, 2, 1)
                .join(", "),
            buy_after_viewing: co_purchase_list(&mut rng, &own_asins, clique, cfg.clique, 2, 1)
                .join(", "),
            description: {
                let len = rng.gen_range(15..25);
                own_vocab.sample(&mut rng, i, len, None, 0.0)
            },
            mis_categorized: false,
        });
    }

    // Niche correct products: tiny isolated co-purchase cliques. Most have
    // ordinary category descriptions — invisible to DIME's negative rules
    // (the description ontology keeps them near the pivot) but flagged by
    // clustering baselines, which only see their relational isolation. The
    // first clique additionally has short, vocabulary-ambiguous
    // descriptions whose theme assignment is noisy: those are the false
    // positives DIME itself pays, like the paper's.
    let niche_asins: Vec<String> =
        (0..cfg.niche * 3).map(|i| make_asin(cfg.category + 0x20, i)).collect();
    for i in 0..cfg.niche * 3 {
        let clique = i / 3;
        let ambiguous = clique == 0;
        rows.push(ProductRow {
            asin: niche_asins[i].clone(),
            title: product_title(&mut rng, cat.title_words),
            brand: brands[rng.gen_range(0..brands.len())].to_owned(),
            also_bought: co_purchase_list(&mut rng, &niche_asins, clique, 3, 2, 0).join(", "),
            also_viewed: co_purchase_list(&mut rng, &niche_asins, clique, 3, 2, 0).join(", "),
            bought_together: co_purchase_list(&mut rng, &niche_asins, clique, 3, 1, 0).join(", "),
            buy_after_viewing: co_purchase_list(&mut rng, &niche_asins, clique, 3, 1, 0).join(", "),
            description: if ambiguous {
                let len = rng.gen_range(5..9);
                own_vocab.sample(&mut rng, i, len, Some(&foreign_vocab), 0.5)
            } else {
                let len = rng.gen_range(15..25);
                own_vocab.sample(&mut rng, i, len, None, 0.0)
            },
            mis_categorized: false,
        });
    }

    // Hard-error share grows with the error rate (paper Exp-2: at higher e%
    // injected products have more similar buying behaviour/description).
    let hard_frac = (cfg.error_rate * 0.5).min(0.35);
    for i in 0..n_errors {
        let clique = i / cfg.clique;
        let hard = rng.gen::<f64>() < hard_frac;
        let pool = if hard { &hard_asins } else { &foreign_asins };
        let mut also_bought = co_purchase_list(&mut rng, pool, clique, cfg.clique, 4, 0);
        let mut also_viewed = co_purchase_list(&mut rng, pool, clique, cfg.clique, 4, 0);
        if !hard && rng.gen_bool(0.3) {
            // Spillover co-view: shoppers browsing the (wrong) category view
            // a target product too. One link is far below ϕ₃⁺'s ≥2 ∧ ≥2
            // join requirement and the ∃-pair negative filter shrugs it
            // off, but relational clustering happily merges on it.
            let tc = rng.gen_range(0..4);
            also_viewed.extend(co_purchase_list(&mut rng, &own_asins, tc, cfg.clique, 1, 0));
        }
        let mut desc_mix = 0.0;
        if hard {
            // Cross-category co-purchases in *both* link lists defeat both
            // negative rules (each needs a zero overlap), and the mixed
            // description often lands in the target theme — these are the
            // injected products that stay undetected at high e%.
            if rng.gen_bool(0.5) {
                let tc1 = rng.gen_range(0..4);
                also_bought.extend(co_purchase_list(&mut rng, &own_asins, tc1, cfg.clique, 1, 0));
                let tc2 = rng.gen_range(0..4);
                also_viewed.extend(co_purchase_list(&mut rng, &own_asins, tc2, cfg.clique, 1, 0));
            }
            desc_mix = 0.75;
        }
        rows.push(ProductRow {
            asin: make_asin(sibling_idx + 0x80, i),
            title: product_title(&mut rng, sibling.title_words),
            brand: brands[rng.gen_range(0..brands.len())].to_owned(),
            also_bought: also_bought.join(", "),
            also_viewed: also_viewed.join(", "),
            bought_together: co_purchase_list(&mut rng, pool, clique, cfg.clique, 2, 0).join(", "),
            buy_after_viewing: co_purchase_list(&mut rng, pool, clique, cfg.clique, 2, 0)
                .join(", "),
            description: {
                let len = rng.gen_range(15..25);
                foreign_vocab.sample(&mut rng, i, len, Some(&own_vocab), desc_mix)
            },
            mis_categorized: true,
        });
    }

    // Shuffle so ids carry no signal.
    for i in (1..rows.len()).rev() {
        rows.swap(i, rng.gen_range(0..=i));
    }

    // Map descriptions into the corpus-level theme model (one super-theme
    // per catalog category).
    let desc_model = DescriptionModel::shared();
    let desc_ont = desc_model.ontology();
    let desc_nodes: Vec<Option<NodeId>> =
        rows.iter().map(|r| desc_model.assign(&r.description)).collect();

    let mut b = GroupBuilder::new(amazon_schema());
    b.attach_ontology("Description", Arc::clone(&desc_ont));
    let mut truth = HashSet::new();
    for (i, row) in rows.iter().enumerate() {
        let nodes = [None, None, None, None, None, None, None, desc_nodes[i]];
        let id = b.add_entity_with_nodes(
            &[
                &row.asin,
                &row.title,
                &row.brand,
                &row.also_bought,
                &row.also_viewed,
                &row.bought_together,
                &row.buy_after_viewing,
                &row.description,
            ],
            &nodes,
        );
        if row.mis_categorized {
            truth.insert(id);
        }
    }
    LabeledGroup { name: cat.name.to_owned(), group: b.build(), truth }
}

/// Generates a suite of categories at one error rate (for the Fig. 6/7
/// sweeps).
pub fn amazon_suite(
    n_categories: usize,
    products: usize,
    error_rate: f64,
    seed: u64,
) -> Vec<LabeledGroup> {
    (0..n_categories)
        .map(|i| {
            amazon_category(&AmazonConfig::new(
                i % PRODUCT_CATEGORIES.len(),
                products,
                error_rate,
                seed.wrapping_add(i as u64 * 977),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::discover_fast;

    #[test]
    fn group_size_and_error_rate() {
        let cfg = AmazonConfig::new(0, 90, 0.1, 5);
        let lg = amazon_category(&cfg);
        assert_eq!(lg.group.len(), 90 + cfg.niche * 3 + cfg.n_errors());
        assert!((lg.error_rate() - 0.1).abs() < 0.02);
    }

    #[test]
    fn also_lists_reference_full_asins() {
        let cfg = AmazonConfig::new(1, 40, 0.2, 6);
        let lg = amazon_category(&cfg);
        for e in lg.group.entities() {
            let v = e.value(attr::ALSO_BOUGHT);
            assert!(!v.tokens.is_empty(), "empty also_bought");
            for &t in &v.tokens {
                let s = lg.group.dictionary().resolve(t).unwrap();
                assert!(s.starts_with('b') && s.len() == 9, "bad asin token {s:?}");
            }
        }
    }

    #[test]
    fn descriptions_have_theme_nodes() {
        let cfg = AmazonConfig::new(2, 50, 0.2, 7);
        let lg = amazon_category(&cfg);
        assert!(lg.group.entities().iter().all(|e| e.value(attr::DESCRIPTION).node.is_some()));
    }

    #[test]
    fn dime_pipeline_discovers_errors() {
        let cfg = AmazonConfig::new(0, 120, 0.2, 11);
        let lg = amazon_category(&cfg);
        let (pos, neg) = amazon_rules();
        let d = discover_fast(&lg.group, &pos, &neg);
        assert!(d.pivot_members().len() >= 60, "pivot too small: {}", d.pivot_members().len());
        let flagged = d.mis_categorized();
        let tp = flagged.iter().filter(|e| lg.truth.contains(e)).count();
        let recall = tp as f64 / lg.truth.len() as f64;
        let precision = if flagged.is_empty() { 1.0 } else { tp as f64 / flagged.len() as f64 };
        assert!(recall > 0.6, "recall {recall}");
        assert!(precision > 0.6, "precision {precision}");
    }

    #[test]
    fn determinism() {
        let cfg = AmazonConfig::new(3, 30, 0.25, 13);
        let a = amazon_category(&cfg);
        let b = amazon_category(&cfg);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn suite_covers_categories() {
        let suite = amazon_suite(3, 25, 0.2, 1);
        assert_eq!(suite.len(), 3);
        let names: HashSet<&str> = suite.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names.len(), 3);
    }
}
