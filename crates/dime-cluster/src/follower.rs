//! The follower role: a warm standby that appends its primary's streamed
//! WAL records into its own per-session logs — byte-for-byte, via
//! `SessionWal::append_raw` — and acks each sequence number only after
//! the append returned, which under `FsyncPolicy::Always` means after the
//! fsync. On `promote` it replays snapshot-then-tail into a full
//! `dime-serve` server (the ordinary recovery path) and answers with the
//! bound address, so a router can redirect traffic with zero
//! closed-session data loss.
//!
//! The follower's data directory is laid out exactly like a primary's
//! (`<data_dir>/sessions/<id>/wal.log` + snapshots), so promotion is
//! nothing special: it is `dime_serve::Server::bind` on a directory that
//! happens to have been written by replication instead of by a local
//! serve loop.

use crate::repl::{write_repl_frame, ReplFrame};
use dime_serve::{ServeConfig, Server, ServerHandle};
use dime_store::wal::recover;
use dime_store::{
    decode_record, FsyncPolicy, Recovery, SessionWal, StoreConfig, StoreStats, WalOp,
};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs of a [`Follower`].
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Replication listen address; port `0` picks a free port.
    pub addr: String,
    /// Root of the mirrored store (sessions land under
    /// `<data_dir>/sessions/<id>/`).
    pub data_dir: PathBuf,
    /// Durability of mirrored appends. `Always` is what makes the ack a
    /// durable promise; weaker policies trade that for throughput.
    pub fsync: FsyncPolicy,
    /// Checkpoint cadence of the promoted server's store.
    pub snapshot_every: usize,
    /// Serve address the promoted server binds; port `0` picks a free
    /// port (the real address travels back in the `promote_ack`).
    pub serve_addr: String,
    /// Worker threads of the promoted server (`0` = auto).
    pub workers: usize,
    /// How often an idle replication connection re-checks the shutdown
    /// flag.
    pub poll_interval: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("dime-follower-data"),
            fsync: FsyncPolicy::Always,
            snapshot_every: 256,
            serve_addr: "127.0.0.1:0".to_string(),
            workers: 0,
            poll_interval: Duration::from_millis(25),
        }
    }
}

struct Shared {
    config: FollowerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    promoting: AtomicBool,
    wals: Mutex<HashMap<u64, SessionWal>>,
    stats: Arc<StoreStats>,
    promoted: Mutex<Option<Server>>,
    promoted_handle: Mutex<Option<ServerHandle>>,
}

impl Shared {
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A cloneable handle for observing and stopping a running [`Follower`].
#[derive(Clone)]
pub struct FollowerHandle {
    shared: Arc<Shared>,
}

impl FollowerHandle {
    /// The bound replication address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops the replication loop; if the follower was promoted, also
    /// initiates the promoted server's graceful shutdown.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
        let handle = self.shared.promoted_handle.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = handle.as_ref() {
            h.shutdown();
        }
    }

    /// The promoted server's handle, once a `promote` has been served.
    pub fn promoted(&self) -> Option<ServerHandle> {
        self.shared.promoted_handle.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// A bound, not-yet-running follower.
pub struct Follower {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Follower {
    /// Binds the replication listener.
    pub fn bind(config: FollowerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        std::fs::create_dir_all(config.data_dir.join("sessions"))?;
        let shared = Arc::new(Shared {
            config,
            addr,
            shutdown: AtomicBool::new(false),
            promoting: AtomicBool::new(false),
            wals: Mutex::new(HashMap::new()),
            stats: Arc::new(StoreStats::default()),
            promoted: Mutex::new(None),
            promoted_handle: Mutex::new(None),
        });
        Ok(Self { listener, shared })
    }

    /// The bound replication address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for stopping the follower from another thread.
    pub fn handle(&self) -> FollowerHandle {
        FollowerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves replication streams until shutdown — or until a `promote`
    /// order arrives, after which this call *becomes* the promoted
    /// server's `run`: it returns when the promoted server has drained.
    pub fn run(self) -> io::Result<()> {
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || serve_repl_conn(stream, &shared));
            }
        });
        drop(self.listener);
        let server = self.shared.promoted.lock().unwrap_or_else(|e| e.into_inner()).take();
        match server {
            Some(server) => server.run(),
            None => Ok(()),
        }
    }
}

/// Serves one replication connection: records are appended and acked;
/// a `promote` ends the replication phase for the whole follower.
fn serve_repl_conn(stream: TcpStream, shared: &Shared) {
    let mut stream = stream;
    if stream.set_nodelay(true).is_err() {
        return;
    }
    loop {
        let frame = match read_frame_polled(&mut stream, shared) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(_) => return,
        };
        match frame {
            ReplFrame::Record { session, payload } => {
                if shared.promoting.load(Ordering::SeqCst) {
                    // A promoted follower is a primary now; its log is no
                    // longer anyone's mirror.
                    return;
                }
                match apply_record(shared, session, &payload) {
                    Ok(seq) => {
                        if write_repl_frame(&mut stream, &ReplFrame::Ack { session, seq }).is_err()
                        {
                            return;
                        }
                    }
                    Err(e) => {
                        // No ack: the primary sees the failed round trip
                        // and fails open. Dropping the connection keeps
                        // the stream from desynchronizing.
                        eprintln!("dime-cluster: follower append failed: {e}");
                        return;
                    }
                }
            }
            ReplFrame::Promote => {
                promote(shared, &mut stream);
                return;
            }
            other => {
                eprintln!("dime-cluster: unexpected replication frame {other:?}");
                return;
            }
        }
    }
}

/// Waits for the next frame, re-checking the shutdown flag between read
/// polls. Only the wait for the *first* byte is polled; once a frame has
/// started arriving the rest is read with a generous timeout, so a poll
/// boundary can never split a frame.
fn read_frame_polled(stream: &mut TcpStream, shared: &Shared) -> io::Result<Option<ReplFrame>> {
    use std::io::Read;
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut rest = Vec::with_capacity(64);
    rest.extend_from_slice(&first);
    // Re-frame: we already consumed one header byte, so read the
    // remaining 7 header bytes manually, then delegate nothing — decode
    // here with the same logic as `read_repl_frame`.
    let mut header_rest = [0u8; 7];
    stream.read_exact(&mut header_rest)?;
    rest.extend_from_slice(&header_rest);
    let frame = decode_framed(&rest, stream)?;
    Ok(Some(frame))
}

/// Finishes reading a frame whose 8 header bytes are in `header`: pulls
/// the payload off the stream and CRC-checks it.
fn decode_framed(header: &[u8], stream: &mut TcpStream) -> io::Result<ReplFrame> {
    use std::io::Read;
    let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let len_bytes: [u8; 4] = header
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| bad("short frame header".into()))?;
    let crc_bytes: [u8; 4] = header
        .get(4..8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| bad("short frame header".into()))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > dime_store::MAX_PAYLOAD_BYTES as usize {
        return Err(bad(format!("replication frame of {len} bytes exceeds the payload cap")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    if dime_store::crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(bad("replication frame CRC mismatch".into()));
    }
    ReplFrame::decode(&payload)
}

/// Appends one streamed record to the session's mirrored WAL, creating or
/// reopening the log as needed, and returns the sequence number to ack.
/// The ack ordering contract lives here: this function returns only after
/// `append_raw` did, i.e. after the record is as durable as the fsync
/// policy promises.
fn apply_record(shared: &Shared, session: u64, payload: &[u8]) -> io::Result<u64> {
    let (_seq, op) = decode_record(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad record: {e}")))?;
    let is_open = matches!(op, WalOp::Open { .. });
    let is_close = matches!(op, WalOp::Close);
    let mut wals = shared.wals.lock().unwrap_or_else(|e| e.into_inner());
    if is_open || !wals.contains_key(&session) {
        let dir = shared.config.data_dir.join("sessions").join(session.to_string());
        let wal = if is_open {
            // Mirrors the primary's create: a fresh log, stale dir wiped.
            SessionWal::create(&dir, shared.config.fsync, Arc::clone(&shared.stats))?
        } else if dir.exists() {
            // Mid-stream resume (primary recovered and kept streaming):
            // reopen our mirrored prefix and continue from its tail.
            match recover(&dir, shared.config.fsync, Arc::clone(&shared.stats))? {
                Recovery::Live(rec) => rec.wal,
                Recovery::Closed | Recovery::Unrecoverable => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("session {session}: mirrored log is closed or unusable"),
                    ))
                }
            }
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("session {session}: record stream started without an open record"),
            ));
        };
        wals.insert(session, wal);
    }
    let wal = wals.get_mut(&session).ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, format!("session {session} has no mirror"))
    })?;
    let acked = wal.append_raw(payload)?;
    if is_close {
        // The close record is the durable end; recovery sweeps the
        // directory. Dropping the WAL frees the descriptor now.
        wal.sync()?;
        wals.remove(&session);
    }
    Ok(acked)
}

/// Serves a `promote` order: flush and release every mirrored WAL, bind a
/// full discovery server on the mirrored data directory (its bind runs
/// the ordinary snapshot-then-tail recovery), answer with the bound
/// address, and hand the server to [`Follower::run`].
fn promote(shared: &Shared, stream: &mut TcpStream) {
    if shared.promoting.swap(true, Ordering::SeqCst) {
        // A second promote order is a router bug; answer with the
        // already-promoted address if we have one.
        let handle = shared.promoted_handle.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = handle.as_ref() {
            let _ = write_repl_frame(stream, &ReplFrame::PromoteAck { addr: h.addr().to_string() });
        }
        return;
    }
    {
        // dime-check: allow(lock-order) — the promoted_handle guard above lives inside an always-returning branch and this wals guard inside this block; the two are never held together
        let mut wals = shared.wals.lock().unwrap_or_else(|e| e.into_inner());
        for wal in wals.values_mut() {
            if let Err(e) = wal.sync() {
                eprintln!("dime-cluster: pre-promotion sync failed: {e}");
            }
        }
        wals.clear();
    }
    let config = ServeConfig {
        addr: shared.config.serve_addr.clone(),
        workers: shared.config.workers,
        store: Some(StoreConfig {
            data_dir: shared.config.data_dir.clone(),
            fsync: shared.config.fsync,
            snapshot_every: shared.config.snapshot_every,
        }),
        ..ServeConfig::default()
    };
    match Server::bind(config) {
        Ok(server) => {
            let addr = server.local_addr();
            *shared.promoted_handle.lock().unwrap_or_else(|e| e.into_inner()) =
                Some(server.handle());
            *shared.promoted.lock().unwrap_or_else(|e| e.into_inner()) = Some(server);
            let _ = write_repl_frame(stream, &ReplFrame::PromoteAck { addr: addr.to_string() });
            // Stop accepting replication; `run` switches to serving.
            shared.initiate_shutdown();
        }
        Err(e) => {
            eprintln!("dime-cluster: promotion failed to bind a server: {e}");
            shared.promoting.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repl::{read_repl_frame, FollowerLink};
    use dime_store::{encode_record, WalTap};
    use std::sync::atomic::AtomicU64;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dime-cluster-{tag}-{}-{n}", std::process::id()))
    }

    fn doc() -> String {
        "{\"schema\": [{\"name\": \"Authors\", \"tokenizer\": {\"list\": \",\"}}]}".to_string()
    }

    const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

    /// The whole follower lifecycle in one test: stream a session's log
    /// over a real socket, promote, and the promoted server must serve a
    /// discovery that reflects every acked record.
    #[test]
    fn streamed_log_promotes_into_a_serving_replica() {
        let dir = temp_dir("promote");
        let follower = Follower::bind(FollowerConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            ..FollowerConfig::default()
        })
        .expect("bind follower");
        let repl_addr = follower.local_addr();
        let handle = follower.handle();
        let runner = std::thread::spawn(move || follower.run());

        let link = FollowerLink::new(repl_addr.to_string(), Duration::from_secs(5));
        let ops = [
            WalOp::Open { doc: doc(), rules: RULES.into() },
            WalOp::AddEntity { values: vec!["ann, bob".into()] },
            WalOp::AddEntity { values: vec!["ann, bob, carl".into()] },
            WalOp::AddEntity { values: vec!["dora".into()] },
        ];
        for (i, op) in ops.iter().enumerate() {
            let payload = encode_record(i as u64 + 1, op);
            link.record_committed(1, &payload).expect("acked append");
        }

        // Promote over a fresh connection, as the router would.
        let mut ctl = TcpStream::connect(repl_addr).expect("connect for promote");
        ctl.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        write_repl_frame(&mut ctl, &ReplFrame::Promote).expect("send promote");
        let serve_addr = match read_repl_frame(&mut ctl).expect("promote ack") {
            ReplFrame::PromoteAck { addr } => addr,
            other => panic!("expected promote_ack, got {other:?}"),
        };

        let mut client = dime_serve::Client::connect(&serve_addr).expect("connect promoted");
        let report = client.discovery(1).expect("discovery on the replayed session");
        let flagged = report["mis_categorized"].as_array().expect("flagged array");
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0]["Authors"], "dora");

        handle.shutdown();
        runner.join().expect("runner").expect("clean run");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// A close record mirrored before the kill must keep the session dead
    /// after promotion — the no-resurrection invariant crosses the
    /// replication boundary.
    #[test]
    fn mirrored_close_stays_closed_after_promotion() {
        let dir = temp_dir("closed");
        let follower = Follower::bind(FollowerConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            ..FollowerConfig::default()
        })
        .expect("bind follower");
        let repl_addr = follower.local_addr();
        let handle = follower.handle();
        let runner = std::thread::spawn(move || follower.run());

        let link = FollowerLink::new(repl_addr.to_string(), Duration::from_secs(5));
        // Session 1 stays live; session 2 closes durably.
        link.record_committed(
            1,
            &encode_record(1, &WalOp::Open { doc: doc(), rules: RULES.into() }),
        )
        .expect("open 1");
        link.record_committed(
            2,
            &encode_record(1, &WalOp::Open { doc: doc(), rules: RULES.into() }),
        )
        .expect("open 2");
        link.record_committed(2, &encode_record(2, &WalOp::Close)).expect("close 2");

        let mut ctl = TcpStream::connect(repl_addr).expect("connect for promote");
        ctl.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        write_repl_frame(&mut ctl, &ReplFrame::Promote).expect("send promote");
        let serve_addr = match read_repl_frame(&mut ctl).expect("promote ack") {
            ReplFrame::PromoteAck { addr } => addr,
            other => panic!("expected promote_ack, got {other:?}"),
        };

        let mut client = dime_serve::Client::connect(&serve_addr).expect("connect promoted");
        assert!(client.stats(Some(1)).is_ok(), "live session must survive");
        match client.stats(Some(2)) {
            Err(dime_serve::ClientError::Server { code, .. }) => {
                assert_eq!(code, dime_serve::ErrorCode::NoSuchSession)
            }
            other => panic!("closed session must stay closed, got {other:?}"),
        }

        handle.shutdown();
        runner.join().expect("runner").expect("clean run");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// A record for a session that never streamed an `open` is a protocol
    /// violation the follower rejects (no ack, connection dropped).
    #[test]
    fn orphan_record_is_rejected() {
        let dir = temp_dir("orphan");
        let follower = Follower::bind(FollowerConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            ..FollowerConfig::default()
        })
        .expect("bind follower");
        let repl_addr = follower.local_addr();
        let handle = follower.handle();
        let runner = std::thread::spawn(move || follower.run());

        let link = FollowerLink::new(repl_addr.to_string(), Duration::from_secs(2));
        let orphan = encode_record(5, &WalOp::AddEntity { values: vec!["x".into()] });
        assert!(link.record_committed(42, &orphan).is_err(), "orphan records must not ack");

        handle.shutdown();
        runner.join().expect("runner").expect("clean run");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
