//! # dime-cluster — sharded discovery with replicated warm failover
//!
//! A thin clustering layer over `dime-serve`/`dime-store`, built from
//! three roles that all speak existing wire formats (no new protocol
//! stack — the framed JSON-lines request protocol and the dime-store WAL
//! frame encoding carry everything):
//!
//! - **Router** ([`Router`]): speaks the dime-serve protocol to clients,
//!   places each session on one of N shards by consistent hashing over
//!   router-assigned session ids ([`Ring`]), proxies session-scoped
//!   operations through capped per-shard connection pools, and fans
//!   `stats`/`trace` out to every shard, merging counters by summation
//!   and histograms bucket-wise.
//! - **Shard**: an ordinary persistent dime-serve server whose committed
//!   WAL frames are additionally streamed — synchronously, ack-by-seq —
//!   to a follower through a [`repl::FollowerLink`] WAL tap.
//! - **Follower** ([`Follower`]): appends the streamed frames to its own
//!   per-session WALs, acking a record only after its own write (fsynced
//!   under `--fsync always`) succeeds, and on `promote` replays
//!   snapshot-then-tail recovery into a full serving replica at the same
//!   data — zero closed-session data loss, bit-identical discovery.
//!
//! The promotion invariant that makes failover safe: the follower never
//! acks a sequence number it has not durably applied, and the primary
//! never reports a WAL append as committed until the follower acked it.
//! Whatever a client saw committed therefore exists on whichever side
//! survives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod follower;
pub mod repl;
pub mod ring;
pub mod router;

pub use follower::{Follower, FollowerConfig, FollowerHandle};
pub use repl::{FollowerLink, ReplFrame};
pub use ring::{Ring, DEFAULT_VNODES};
pub use router::{HealthConfig, Router, RouterConfig, RouterHandle, ShardSpec};
