//! The replication wire: CRC-framed binary messages over TCP, reusing
//! `dime-store`'s `[u32 len][u32 crc][payload]` frame codec so a record
//! streamed from a primary re-enters the follower's WAL byte-for-byte.
//!
//! Message payloads are `[u8 tag][fields]`:
//!
//! | tag | message      | fields                                    |
//! |-----|--------------|-------------------------------------------|
//! | 1   | `record`     | `u64` session, raw WAL record payload     |
//! | 2   | `ack`        | `u64` session, `u64` seq                  |
//! | 3   | `promote`    | —                                         |
//! | 4   | `promote_ack`| UTF-8 serve address of the new primary    |
//!
//! Replication is synchronous: the primary's [`FollowerLink`] writes one
//! `record` and blocks for the matching `ack` before the WAL append
//! returns. The follower sends the ack only after its own
//! `SessionWal::append_raw` returned — which, under `--fsync always`,
//! means the record is fsynced on the follower. That ordering is the
//! promotion invariant: a follower never acknowledges a sequence number
//! it could lose.

use dime_store::{crc32, decode_record, write_frame, MAX_PAYLOAD_BYTES};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

const TAG_RECORD: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_PROMOTE: u8 = 3;
const TAG_PROMOTE_ACK: u8 = 4;

/// One replication message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// A committed WAL record of `session`, as the exact encoded
    /// `[seq|tag|fields]` payload the primary framed into its own log.
    Record {
        /// The session the record belongs to.
        session: u64,
        /// The raw record payload.
        payload: Vec<u8>,
    },
    /// The follower's durable acknowledgement of `seq`.
    Ack {
        /// The acknowledged session.
        session: u64,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Order from the router: replay your logs and start serving.
    Promote,
    /// The promoted server is up at `addr`.
    PromoteAck {
        /// The serve address clients (the router) should use now.
        addr: String,
    },
}

impl ReplFrame {
    /// Encodes the message payload (tag + fields, without the frame
    /// header).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplFrame::Record { session, payload } => {
                let mut out = Vec::with_capacity(9 + payload.len());
                out.push(TAG_RECORD);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(payload);
                out
            }
            ReplFrame::Ack { session, seq } => {
                let mut out = Vec::with_capacity(17);
                out.push(TAG_ACK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out
            }
            ReplFrame::Promote => vec![TAG_PROMOTE],
            ReplFrame::PromoteAck { addr } => {
                let mut out = Vec::with_capacity(1 + addr.len());
                out.push(TAG_PROMOTE_ACK);
                out.extend_from_slice(addr.as_bytes());
                out
            }
        }
    }

    /// Decodes a message payload. Total: any truncated field or unknown
    /// tag is an `InvalidData` error, never a panic.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let tag = *payload.first().ok_or_else(|| bad("empty replication frame"))?;
        let rest = payload.get(1..).unwrap_or(&[]);
        match tag {
            TAG_RECORD => {
                let session = u64_at(rest, 0).ok_or_else(|| bad("record frame too short"))?;
                let payload = rest.get(8..).ok_or_else(|| bad("record frame too short"))?;
                Ok(ReplFrame::Record { session, payload: payload.to_vec() })
            }
            TAG_ACK => {
                let session = u64_at(rest, 0).ok_or_else(|| bad("ack frame too short"))?;
                let seq = u64_at(rest, 8).ok_or_else(|| bad("ack frame too short"))?;
                Ok(ReplFrame::Ack { session, seq })
            }
            TAG_PROMOTE => Ok(ReplFrame::Promote),
            TAG_PROMOTE_ACK => {
                let addr = std::str::from_utf8(rest)
                    .map_err(|_| bad("promote_ack address is not UTF-8"))?;
                Ok(ReplFrame::PromoteAck { addr: addr.to_string() })
            }
            _ => Err(bad("unknown replication frame tag")),
        }
    }
}

fn u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let raw: [u8; 8] = bytes.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(raw))
}

/// Writes one framed replication message and flushes it.
pub fn write_repl_frame(w: &mut impl Write, frame: &ReplFrame) -> io::Result<()> {
    write_frame(w, &frame.encode())?;
    w.flush()
}

/// Reads one framed replication message: `[u32 len][u32 crc]`, then the
/// payload, with the CRC verified before decoding. Blocking; respects the
/// stream's read timeout (a timeout mid-frame is an error — the caller
/// drops the connection, it does not resynchronize).
pub fn read_repl_frame(r: &mut impl Read) -> io::Result<ReplFrame> {
    // The two 4-byte reads together consume dime-store's
    // FRAME_HEADER_BYTES-sized header.
    let mut len_bytes = [0u8; 4];
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    r.read_exact(&mut crc_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_PAYLOAD_BYTES as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("replication frame of {len} bytes exceeds the payload cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "replication frame CRC mismatch"));
    }
    ReplFrame::decode(&payload)
}

/// The primary side of a replication stream: a [`dime_store::WalTap`]
/// that forwards each committed record to the follower and blocks for its
/// ack, so the primary's append does not return before the follower is as
/// durable as the fsync policy promises.
///
/// The connection is dialed lazily on the first record and redialed after
/// any error; an unreachable follower therefore surfaces as an append
/// error, which `dime-serve`'s fail-open persistence turns into a broken
/// session mirror rather than a refused request.
pub struct FollowerLink {
    addr: String,
    timeout: Duration,
    conn: Mutex<Option<TcpStream>>,
}

impl FollowerLink {
    /// A link to the follower's replication address. `timeout` bounds the
    /// connect and each ack wait.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self { addr: addr.into(), timeout, conn: Mutex::new(None) }
    }

    /// The follower's replication address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn stream_record(
        &self,
        conn: &mut Option<TcpStream>,
        session: u64,
        seq: u64,
        payload: &[u8],
    ) -> io::Result<()> {
        if conn.is_none() {
            let stream = connect_with_timeout(&self.addr, self.timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            *conn = Some(stream);
        }
        let stream = conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "follower link down"))?;
        write_repl_frame(stream, &ReplFrame::Record { session, payload: payload.to_vec() })?;
        match read_repl_frame(stream)? {
            ReplFrame::Ack { session: s, seq: q } if s == session && q == seq => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected ack for session {session} seq {seq}, got {other:?}"),
            )),
        }
    }
}

/// Resolves `addr` and dials it with a per-candidate connect timeout.
pub fn connect_with_timeout(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let mut last = io::Error::new(io::ErrorKind::NotFound, format!("no address for {addr:?}"));
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
    }
    Err(last)
}

impl dime_store::WalTap for FollowerLink {
    fn record_committed(&self, session: u64, payload: &[u8]) -> io::Result<()> {
        let (seq, _op) = decode_record(payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad record: {e}")))?;
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let sent = self.stream_record(&mut conn, session, seq, payload);
        if sent.is_err() {
            // The stream is desynchronized or dead either way; the next
            // record redials. Replayed prefixes are the follower's
            // problem to reject (append_raw validates sequence order).
            *conn = None;
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_store::{encode_record, WalOp, WalTap};
    use std::net::TcpListener;

    fn roundtrip(frame: ReplFrame) {
        let mut buf = Vec::new();
        write_repl_frame(&mut buf, &frame).expect("write");
        let decoded = read_repl_frame(&mut buf.as_slice()).expect("read");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(ReplFrame::Record { session: 7, payload: b"raw record bytes".to_vec() });
        roundtrip(ReplFrame::Ack { session: 7, seq: 42 });
        roundtrip(ReplFrame::Promote);
        roundtrip(ReplFrame::PromoteAck { addr: "127.0.0.1:4071".into() });
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let mut buf = Vec::new();
        write_repl_frame(&mut buf, &ReplFrame::Ack { session: 1, seq: 2 }).expect("write");
        let last = buf.len() - 1;
        buf[last] ^= 0xFF; // flip a payload byte: CRC must catch it
        assert!(read_repl_frame(&mut buf.as_slice()).is_err());

        assert!(ReplFrame::decode(&[]).is_err());
        assert!(ReplFrame::decode(&[TAG_RECORD, 1, 2]).is_err());
        assert!(ReplFrame::decode(&[TAG_ACK, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(ReplFrame::decode(&[99]).is_err());
        assert!(ReplFrame::decode(&[TAG_PROMOTE_ACK, 0xFF, 0xFE]).is_err());
    }

    /// A follower stub on a real socket: acks every record with its
    /// decoded seq. The link must deliver records in order and survive
    /// the ack round trips.
    #[test]
    fn follower_link_streams_and_awaits_acks() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let follower = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut seqs = Vec::new();
            for _ in 0..3 {
                match read_repl_frame(&mut conn).expect("read record") {
                    ReplFrame::Record { session, payload } => {
                        let (seq, _) = decode_record(&payload).expect("decode");
                        seqs.push(seq);
                        write_repl_frame(&mut conn, &ReplFrame::Ack { session, seq })
                            .expect("write ack");
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
            seqs
        });

        let link = FollowerLink::new(addr.to_string(), Duration::from_secs(5));
        for seq in 1..=3u64 {
            let payload = encode_record(seq, &WalOp::AddEntity { values: vec!["v".into()] });
            link.record_committed(9, &payload).expect("record must be acked");
        }
        assert_eq!(follower.join().expect("follower"), vec![1, 2, 3]);
    }

    /// A wrong ack is a replication failure the primary must surface, and
    /// the link must drop the connection so the next record redials.
    #[test]
    fn mismatched_ack_fails_the_append() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let follower = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let _ = read_repl_frame(&mut conn).expect("read record");
            write_repl_frame(&mut conn, &ReplFrame::Ack { session: 9, seq: 999 })
                .expect("write bogus ack");
        });

        let link = FollowerLink::new(addr.to_string(), Duration::from_secs(5));
        let payload = encode_record(1, &WalOp::Close);
        assert!(link.record_committed(9, &payload).is_err());
        follower.join().expect("follower");
    }

    #[test]
    fn unreachable_follower_is_an_error_not_a_hang() {
        // A listener that is immediately dropped: the port is closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let link = FollowerLink::new(addr.to_string(), Duration::from_millis(200));
        let payload = encode_record(1, &WalOp::Close);
        assert!(link.record_committed(1, &payload).is_err());
    }
}
