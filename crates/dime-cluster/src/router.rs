//! The cluster router: speaks the same framed JSON-lines protocol as a
//! single `dime-serve` server, but owns no sessions itself — it places
//! each session on one of N backend shards by consistent hashing over its
//! router-assigned id, proxies session-scoped operations to the owning
//! shard over a small per-shard connection pool, and fans
//! `stats`/`trace` out to every shard, merging counters by summation and
//! latency histograms bucket-wise (the monotone merge of
//! `dime_trace::Histogram`).
//!
//! Failure model: a shard IO failure answers the client with the
//! retryable [`ErrorCode::Unavailable`] — the request was not applied (or
//! its fate is unknown and the client may resend; see
//! `Client::with_retry`'s caveat). When health probing is enabled and a
//! shard misses `fail_threshold` consecutive probes, the router promotes
//! the shard's configured follower (the `promote`/`promote_ack` exchange
//! of [`crate::repl`]), repoints the shard at the promoted address, bumps
//! the shard's generation so pooled connections to the dead primary are
//! discarded, and resumes routing. Session placement never changes on
//! failover — the ring maps ids to shard *slots*, and a slot keeps its
//! sessions across promotion because the follower holds a byte-identical
//! copy of every acked log.

use crate::repl::{connect_with_timeout, read_repl_frame, write_repl_frame, ReplFrame};
use crate::ring::{Ring, DEFAULT_VNODES};
use dime_serve::{
    Client, ClientError, ErrorCode, Frame, FrameReader, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};
use dime_trace::{Histogram, HistogramSnapshot, BUCKETS};
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Recovers from lock poisoning instead of propagating panics: router
/// state (pools, the session map) stays usable if a holder panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One backend shard: its serving address and, optionally, the
/// replication address of a warm follower to promote on failure.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard primary's serve address.
    pub addr: String,
    /// The follower's replication address, when the shard has one.
    pub follower: Option<String>,
}

/// Health probing and failover knobs.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Pause between probe rounds.
    pub interval: Duration,
    /// Consecutive probe failures before a shard is declared dead.
    pub fail_threshold: u32,
    /// Connect + response budget of one probe.
    pub connect_timeout: Duration,
    /// How long to wait for a follower's `promote_ack` (recovery replay
    /// happens inside this window).
    pub promote_timeout: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(500),
            fail_threshold: 3,
            connect_timeout: Duration::from_millis(250),
            promote_timeout: Duration::from_secs(30),
        }
    }
}

/// Tuning knobs of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port `0` picks a free port.
    pub addr: String,
    /// The backend shards, in ring-slot order.
    pub shards: Vec<ShardSpec>,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: usize,
    /// Hard cap on pooled + in-flight connections per shard. Keep this
    /// *below* the shard's worker count: pooled connections occupy a
    /// shard worker for their lifetime, and health probes need a free
    /// slot.
    pub pool_per_shard: usize,
    /// Hard cap on one request or response frame, in bytes.
    pub max_frame_bytes: usize,
    /// Read-poll granularity of client connections (shutdown checks).
    pub poll_interval: Duration,
    /// Client connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Write timeout per response frame.
    pub write_timeout: Duration,
    /// Health probing and failover; `None` disables both.
    pub health: Option<HealthConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: DEFAULT_VNODES,
            pool_per_shard: 2,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            health: None,
        }
    }
}

/// A capped pool of connections to one shard, tagged with the shard
/// generation they were dialed under so a failover invalidates them.
struct Pool {
    inner: Mutex<PoolInner>,
    available: Condvar,
    cap: usize,
}

struct PoolInner {
    idle: Vec<(u64, Client)>,
    /// Connections currently checked out or being dialed.
    outstanding: usize,
}

impl Pool {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(PoolInner { idle: Vec::new(), outstanding: 0 }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }
}

/// Live state of one shard slot.
struct ShardState {
    addr: Mutex<String>,
    follower: Mutex<Option<String>>,
    healthy: AtomicBool,
    generation: AtomicU64,
    failovers: AtomicU64,
    pool: Pool,
}

impl ShardState {
    fn current_addr(&self) -> String {
        lock(&self.addr).clone()
    }

    /// Checks a connection out of the pool, dialing a fresh one when
    /// under the cap, blocking when at it. Stale-generation idle
    /// connections are discarded on the way.
    fn checkout(&self) -> io::Result<(u64, Client)> {
        let mut inner = lock(&self.pool.inner);
        loop {
            let generation = self.generation.load(Ordering::SeqCst);
            while let Some((tagged, client)) = inner.idle.pop() {
                if tagged == generation {
                    inner.outstanding += 1;
                    return Ok((generation, client));
                }
                // Stale: dialed before a failover; drop it.
            }
            if inner.outstanding < self.pool.cap {
                inner.outstanding += 1;
                drop(inner);
                let addr = self.current_addr();
                return match Client::connect(addr.as_str()) {
                    Ok(client) => Ok((generation, client)),
                    Err(e) => {
                        let mut inner = lock(&self.pool.inner);
                        inner.outstanding -= 1;
                        drop(inner);
                        self.pool.available.notify_one();
                        Err(e)
                    }
                };
            }
            inner = self.pool.available.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns a checked-out connection. A connection whose request
    /// failed, or that outlived its generation, is dropped instead of
    /// pooled.
    fn give_back(&self, generation: u64, client: Client, reusable: bool) {
        let mut inner = lock(&self.pool.inner);
        inner.outstanding = inner.outstanding.saturating_sub(1);
        if reusable && generation == self.generation.load(Ordering::SeqCst) {
            inner.idle.push((generation, client));
        }
        drop(inner);
        self.pool.available.notify_one();
    }

    /// Invalidates every pooled connection (failover): bumps the
    /// generation and drops the idle set.
    fn invalidate_pool(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        let mut inner = lock(&self.pool.inner);
        inner.idle.clear();
        drop(inner);
        self.pool.available.notify_all();
    }
}

struct Shared {
    config: RouterConfig,
    ring: Ring,
    shards: Vec<ShardState>,
    /// Router session id → (shard slot, shard-local session id).
    sessions: Mutex<HashMap<u64, (usize, u64)>>,
    next_rid: AtomicU64,
    failovers: AtomicU64,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A cloneable handle for observing and stopping a running [`Router`].
#[derive(Clone)]
pub struct RouterHandle {
    shared: Arc<Shared>,
}

impl RouterHandle {
    /// The bound address (with the real port when `0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates graceful shutdown, equivalent to a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running cluster router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Router {
    /// Binds the configured address. Requires at least one shard.
    pub fn bind(config: RouterConfig) -> io::Result<Self> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ring = Ring::new(config.shards.len(), config.vnodes.max(1));
        let shards = config
            .shards
            .iter()
            .map(|spec| ShardState {
                addr: Mutex::new(spec.addr.clone()),
                follower: Mutex::new(spec.follower.clone()),
                healthy: AtomicBool::new(true),
                generation: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                pool: Pool::new(config.pool_per_shard),
            })
            .collect();
        let shared = Arc::new(Shared {
            config,
            ring,
            shards,
            sessions: Mutex::new(HashMap::new()),
            next_rid: AtomicU64::new(1),
            failovers: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (with the real port when `0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for stopping the router from another thread.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until shutdown: one thread per client connection, plus the
    /// health prober when probing is configured.
    pub fn run(self) -> io::Result<()> {
        std::thread::scope(|scope| {
            if self.shared.config.health.is_some() {
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || probe_loop(&shared));
            }
            for stream in self.listener.incoming() {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || serve_connection(stream, &shared));
            }
        });
        Ok(())
    }
}

/// Serves one client connection — the same poll/idle/drain discipline as
/// `dime-serve`'s workers, minus the worker pool (the shard pools are the
/// concurrency limit that matters here).
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let cfg = &shared.config;
    if stream.set_read_timeout(Some(cfg.poll_interval)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(io::BufReader::new(stream), cfg.max_frame_bytes);
    let mut idle = Duration::ZERO;
    let mut shutdown_polls = 0u32;
    loop {
        match reader.read_frame() {
            Ok(Frame::Eof) => return,
            Ok(Frame::Oversized) => {
                idle = Duration::ZERO;
                shutdown_polls = 0;
                let resp = Response::err(
                    ErrorCode::FrameTooLarge,
                    format!("frame exceeds {} bytes", cfg.max_frame_bytes),
                );
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Ok(Frame::Line(line)) => {
                idle = Duration::ZERO;
                shutdown_polls = 0;
                if line.trim().is_empty() {
                    continue;
                }
                let (resp, is_shutdown) = process_line(&line, shared);
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
                if is_shutdown {
                    shared.initiate_shutdown();
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    shutdown_polls += 1;
                    if shutdown_polls >= 2 {
                        return;
                    }
                } else {
                    idle += cfg.poll_interval;
                    if idle >= cfg.idle_timeout {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

fn write_response(writer: &mut TcpStream, resp: &Response) -> io::Result<()> {
    writer.write_all(dime_serve::encode_frame(&resp.to_value()).as_bytes())?;
    writer.flush()
}

fn process_line(line: &str, shared: &Shared) -> (Response, bool) {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (Response::err(ErrorCode::BadFrame, format!("invalid JSON: {e}")), false),
    };
    let req = match Request::from_value(&value) {
        Ok(r) => r,
        Err(e) => return (Response::err(e.code, e.message), false),
    };
    let is_shutdown = matches!(req, Request::Shutdown);
    (route_request(&req, shared), is_shutdown)
}

/// Sends one request to a shard through its pool. IO failures come back
/// as the retryable `unavailable`; shard-side error responses pass
/// through verbatim.
fn shard_request(shared: &Shared, slot: usize, req: &Request) -> Response {
    let Some(shard) = shared.shards.get(slot) else {
        return Response::err(ErrorCode::Internal, format!("no shard slot {slot}"));
    };
    let (generation, mut client) = match shard.checkout() {
        Ok(c) => c,
        Err(e) => {
            return Response::err(ErrorCode::Unavailable, format!("shard {slot} unreachable: {e}"))
        }
    };
    match client.request(req) {
        Ok(resp) => {
            shard.give_back(generation, client, true);
            resp
        }
        Err(ClientError::Io(e)) => {
            shard.give_back(generation, client, false);
            Response::err(ErrorCode::Unavailable, format!("shard {slot} failed mid-request: {e}"))
        }
        Err(e) => {
            shard.give_back(generation, client, false);
            Response::err(ErrorCode::Internal, format!("shard {slot} protocol error: {e}"))
        }
    }
}

/// The request a session-scoped operation becomes on the owning shard:
/// same operation, shard-local session id.
fn with_session(req: &Request, session: u64) -> Request {
    match req {
        Request::AddEntities { entities, .. } => {
            Request::AddEntities { session, entities: entities.clone() }
        }
        Request::RemoveEntity { entity, .. } => Request::RemoveEntity { session, entity: *entity },
        Request::Discovery { .. } => Request::Discovery { session },
        Request::Scrollbar { step, .. } => Request::Scrollbar { session, step: *step },
        Request::Stats { .. } => Request::Stats { session: Some(session) },
        Request::Rules { action, .. } => Request::Rules { session, action: action.clone() },
        Request::Feedback { labels, apply, .. } => {
            Request::Feedback { session, labels: labels.clone(), apply: *apply }
        }
        Request::CloseSession { .. } => Request::CloseSession { session },
        other => other.clone(),
    }
}

/// Dispatches one request: local (ping/shutdown), placed (create),
/// routed (session-scoped), or fanned out (global stats/trace).
fn route_request(req: &Request, shared: &Shared) -> Response {
    match req {
        Request::Ping => Response::Ok(json!({"pong": true})),
        Request::Shutdown => Response::Ok(json!({"shutting_down": true})),
        Request::CreateSession { .. } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::err(
                    ErrorCode::ShuttingDown,
                    "router is draining; no new sessions",
                );
            }
            let rid = shared.next_rid.fetch_add(1, Ordering::SeqCst);
            let Some(slot) = shared.ring.shard_of(rid) else {
                return Response::err(ErrorCode::Internal, "placement ring is empty");
            };
            match shard_request(shared, slot, req) {
                Response::Ok(mut v) => {
                    let Some(remote) = v.get("session").and_then(Value::as_u64) else {
                        return Response::err(
                            ErrorCode::Internal,
                            format!("shard {slot} created a session without an id"),
                        );
                    };
                    lock(&shared.sessions).insert(rid, (slot, remote));
                    if let Some(obj) = v.as_object_mut() {
                        obj.insert("session".into(), json!(rid));
                    }
                    Response::Ok(v)
                }
                err => err,
            }
        }
        Request::AddEntities { session, .. }
        | Request::RemoveEntity { session, .. }
        | Request::Discovery { session }
        | Request::Scrollbar { session, .. }
        | Request::Stats { session: Some(session) }
        | Request::Rules { session, .. }
        | Request::Feedback { session, .. }
        | Request::CloseSession { session } => {
            let rid = *session;
            let Some((slot, remote)) = lock(&shared.sessions).get(&rid).copied() else {
                return Response::err(
                    ErrorCode::NoSuchSession,
                    format!("session {rid} does not exist"),
                );
            };
            let resp = shard_request(shared, slot, &with_session(req, remote));
            match (req, resp) {
                (Request::CloseSession { .. }, Response::Ok(mut v)) => {
                    lock(&shared.sessions).remove(&rid);
                    if let Some(obj) = v.as_object_mut() {
                        obj.insert("closed".into(), json!(rid));
                    }
                    Response::Ok(v)
                }
                (_, resp) => resp,
            }
        }
        Request::Stats { session: None } => {
            let (merged, reachable) = fan_out(shared, req);
            let mut v = merge_stats(&merged);
            if v.as_object().is_none() {
                // Every shard unreachable: still answer with the cluster view.
                v = Value::Object(Map::new());
            }
            if let Some(obj) = v.as_object_mut() {
                obj.insert("cluster".into(), cluster_value(shared, &reachable));
            }
            Response::Ok(v)
        }
        Request::Trace => {
            let (results, _) = fan_out(shared, req);
            Response::Ok(merge_trace(&results))
        }
    }
}

/// Sends `req` to every shard, returning the successful payloads and a
/// per-shard reachability vector (unreachable shards are simply absent
/// from the merge — a cluster-wide view should not fail because one
/// shard is mid-failover).
fn fan_out(shared: &Shared, req: &Request) -> (Vec<Value>, Vec<bool>) {
    let mut values = Vec::with_capacity(shared.shards.len());
    let mut reachable = Vec::with_capacity(shared.shards.len());
    for slot in 0..shared.shards.len() {
        match shard_request(shared, slot, req) {
            Response::Ok(v) => {
                values.push(v);
                reachable.push(true);
            }
            Response::Err { .. } => reachable.push(false),
        }
    }
    (values, reachable)
}

/// The router's own contribution to the global stats view.
fn cluster_value(shared: &Shared, reachable: &[bool]) -> Value {
    let shards: Vec<Value> = shared
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            json!({
                "addr": s.current_addr(),
                "healthy": s.healthy.load(Ordering::SeqCst),
                "reachable": reachable.get(i).copied().unwrap_or(false),
                "generation": s.generation.load(Ordering::SeqCst),
                "failovers": s.failovers.load(Ordering::SeqCst),
            })
        })
        .collect();
    json!({
        "shards": shards,
        "failovers": shared.failovers.load(Ordering::SeqCst),
        "sessions_routed": lock(&shared.sessions).len(),
    })
}

// --- cross-shard merging ------------------------------------------------

/// Whether a JSON object is a serialized histogram aggregate (both the
/// `_micros`-suffixed latency form and the unit-agnostic trace form
/// carry a `buckets` array of `[index, count]` pairs).
fn is_histogram_object(v: &Value) -> bool {
    v.get("buckets").and_then(Value::as_array).is_some() && v.get("count").is_some()
}

/// Rebuilds a [`HistogramSnapshot`] from its serialized form. `suffix`
/// is `"_micros"` for latency aggregates, `""` for trace histograms.
fn snapshot_of(v: &Value, suffix: &str) -> HistogramSnapshot {
    let field = |name: &str| {
        v.get(&format!("{name}{suffix}"))
            .or_else(|| v.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let mut buckets = [0u64; BUCKETS];
    if let Some(pairs) = v.get("buckets").and_then(Value::as_array) {
        for pair in pairs {
            let Some(cells) = pair.as_array() else { continue };
            let (Some(i), Some(n)) =
                (cells.first().and_then(Value::as_u64), cells.get(1).and_then(Value::as_u64))
            else {
                continue;
            };
            if let Some(cell) = buckets.get_mut(i as usize) {
                *cell = n;
            }
        }
    }
    HistogramSnapshot {
        count: field("count"),
        total: field("total"),
        max: field("max"),
        p50: 0,
        p95: 0,
        p99: 0,
        buckets,
    }
}

/// Serializes a merged histogram back into the same shape its inputs
/// had, quantiles recomputed over the merged buckets.
fn histogram_value(h: &Histogram, suffix: &str) -> Value {
    let s = h.snapshot();
    let pairs: Vec<Value> =
        s.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| json!([i, n])).collect();
    let mut obj = Map::new();
    obj.insert("count".into(), json!(s.count));
    obj.insert(format!("total{suffix}"), json!(s.total));
    obj.insert(format!("max{suffix}"), json!(s.max));
    obj.insert(format!("mean{suffix}"), json!(s.mean()));
    obj.insert(format!("p50{suffix}"), json!(s.p50));
    obj.insert(format!("p95{suffix}"), json!(s.p95));
    obj.insert(format!("p99{suffix}"), json!(s.p99));
    obj.insert("buckets".into(), Value::Array(pairs));
    Value::Object(obj)
}

/// Merges several histogram objects through an actual [`Histogram`], so
/// the merged quantiles obey the same monotonicity contract as a
/// single-node merge.
fn merge_histograms(values: &[&Value]) -> Value {
    let suffix =
        if values.iter().any(|v| v.get("total_micros").is_some()) { "_micros" } else { "" };
    let merged = Histogram::new();
    for v in values {
        merged.merge_snapshot(&snapshot_of(v, suffix));
    }
    histogram_value(&merged, suffix)
}

/// Deep-merges per-shard `stats` payloads: numbers sum (`uptime_micros`
/// takes the max — shard uptimes don't add), histogram objects merge
/// bucket-wise, nested objects recurse, everything else keeps the first
/// shard's value.
fn merge_stats(values: &[Value]) -> Value {
    let refs: Vec<&Value> = values.iter().collect();
    merge_field("", &refs)
}

fn merge_field(key: &str, values: &[&Value]) -> Value {
    let Some(first) = values.first() else { return Value::Null };
    if values.iter().all(|v| v.as_u64().is_some()) {
        let nums = values.iter().filter_map(|v| v.as_u64());
        return if key == "uptime_micros" {
            json!(nums.max().unwrap_or(0))
        } else {
            json!(nums.fold(0u64, u64::saturating_add))
        };
    }
    if first.as_object().is_some() {
        if values.iter().all(|v| is_histogram_object(v)) {
            return merge_histograms(values);
        }
        let mut keys: Vec<&String> = Vec::new();
        for v in values {
            if let Some(obj) = v.as_object() {
                for k in obj.keys() {
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
            }
        }
        let mut out = Map::new();
        for k in keys {
            let at_key: Vec<&Value> = values.iter().filter_map(|v| v.get(k.as_str())).collect();
            out.insert(k.clone(), merge_field(k, &at_key));
        }
        return Value::Object(out);
    }
    (*first).clone()
}

/// Merges per-shard `trace` payloads: phases by name, counters by key,
/// rule hits by (kind, rule), histograms by name — sums and bucket-wise
/// histogram merges throughout.
fn merge_trace(values: &[Value]) -> Value {
    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut rule_hits: BTreeMap<(String, u64), u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut spans = 0u64;
    let mut dropped = 0u64;
    for v in values {
        for p in v.get("phases").and_then(Value::as_array).unwrap_or(&Vec::new()) {
            let Some(name) = p.get("name").and_then(Value::as_str) else { continue };
            let entry = phases.entry(name.to_string()).or_insert((0, 0));
            entry.0 += p.get("count").and_then(Value::as_u64).unwrap_or(0);
            entry.1 += p.get("total_ns").and_then(Value::as_u64).unwrap_or(0);
        }
        if let Some(obj) = v.get("counters").and_then(Value::as_object) {
            for (k, n) in obj {
                *counters.entry(k.clone()).or_insert(0) += n.as_u64().unwrap_or(0);
            }
        }
        for r in v.get("rule_hits").and_then(Value::as_array).unwrap_or(&Vec::new()) {
            let kind = r.get("kind").and_then(Value::as_str).unwrap_or("?").to_string();
            let rule = r.get("rule").and_then(Value::as_u64).unwrap_or(0);
            *rule_hits.entry((kind, rule)).or_insert(0) +=
                r.get("hits").and_then(Value::as_u64).unwrap_or(0);
        }
        for h in v.get("histograms").and_then(Value::as_array).unwrap_or(&Vec::new()) {
            let Some(name) = h.get("name").and_then(Value::as_str) else { continue };
            histograms.entry(name.to_string()).or_default().merge_snapshot(&snapshot_of(h, ""));
        }
        spans += v.get("spans").and_then(Value::as_u64).unwrap_or(0);
        dropped += v.get("dropped_spans").and_then(Value::as_u64).unwrap_or(0);
    }
    let phases: Vec<Value> = phases
        .into_iter()
        .map(
            |(name, (count, total_ns))| json!({"name": name, "count": count, "total_ns": total_ns}),
        )
        .collect();
    let mut counter_obj = Map::new();
    for (k, n) in counters {
        counter_obj.insert(k, json!(n));
    }
    let rule_hits: Vec<Value> = rule_hits
        .into_iter()
        .map(|((kind, rule), hits)| json!({"kind": kind, "rule": rule, "hits": hits}))
        .collect();
    let histograms: Vec<Value> = histograms
        .into_iter()
        .map(|(name, h)| {
            let mut v = histogram_value(&h, "");
            if let Some(obj) = v.as_object_mut() {
                obj.insert("name".into(), json!(name));
            }
            v
        })
        .collect();
    json!({
        "phases": phases,
        "counters": counter_obj,
        "rule_hits": rule_hits,
        "histograms": histograms,
        "spans": spans,
        "dropped_spans": dropped,
    })
}

// --- health probing and failover ----------------------------------------

/// Probes every shard each interval; a shard missing `fail_threshold`
/// consecutive probes is declared dead and its follower (if any) is
/// promoted.
fn probe_loop(shared: &Shared) {
    let Some(health) = shared.config.health.clone() else { return };
    let mut consecutive_failures = vec![0u32; shared.shards.len()];
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(health.interval);
        for (slot, shard) in shared.shards.iter().enumerate() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Some(fails) = consecutive_failures.get_mut(slot) else { continue };
            if probe(&shard.current_addr(), health.connect_timeout) {
                *fails = 0;
                shard.healthy.store(true, Ordering::SeqCst);
                continue;
            }
            *fails += 1;
            if *fails < health.fail_threshold {
                continue;
            }
            shard.healthy.store(false, Ordering::SeqCst);
            // Promote at most once: the follower slot is consumed.
            let follower = lock(&shard.follower).take();
            let Some(follower_addr) = follower else { continue };
            match promote_follower(&follower_addr, &health) {
                Ok(new_addr) => {
                    eprintln!(
                        "dime-cluster: shard {slot} dead after {fails} probes; promoted follower at {new_addr}",
                        fails = *fails
                    );
                    // dime-check: allow(lock-order) — both guards here are statement-scoped temporaries (take() above, this assignment) dropped at their `;`; follower and addr are never held together
                    *lock(&shard.addr) = new_addr;
                    shard.invalidate_pool();
                    shard.failovers.fetch_add(1, Ordering::SeqCst);
                    shared.failovers.fetch_add(1, Ordering::SeqCst);
                    shard.healthy.store(true, Ordering::SeqCst);
                    *fails = 0;
                }
                Err(e) => {
                    eprintln!("dime-cluster: promoting shard {slot}'s follower failed: {e}");
                    *lock(&shard.follower) = Some(follower_addr);
                }
            }
        }
    }
}

/// One health probe: connect, ping, expect any well-formed response line.
fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(stream) = connect_with_timeout(addr, timeout) else { return false };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    if writer.write_all(b"{\"op\":\"ping\"}\n").is_err() || writer.flush().is_err() {
        return false;
    }
    let mut reader = FrameReader::new(io::BufReader::new(stream), DEFAULT_MAX_FRAME_BYTES);
    matches!(reader.read_frame(), Ok(Frame::Line(_)))
}

/// The promotion exchange: `promote` out, `promote_ack` (with the new
/// primary's serve address) back.
fn promote_follower(follower_addr: &str, health: &HealthConfig) -> io::Result<String> {
    let mut stream = connect_with_timeout(follower_addr, health.connect_timeout)?;
    stream.set_read_timeout(Some(health.promote_timeout))?;
    stream.set_write_timeout(Some(health.promote_timeout))?;
    write_repl_frame(&mut stream, &ReplFrame::Promote)?;
    match read_repl_frame(&mut stream)? {
        ReplFrame::PromoteAck { addr } => Ok(addr),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected promote_ack, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::follower::{Follower, FollowerConfig};
    use crate::repl::FollowerLink;
    use dime_serve::{ServeConfig, Server, WalTapHandle};
    use dime_store::{FsyncPolicy, StoreConfig};
    use serde_json::json;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: TestCounter = TestCounter::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dime-router-{tag}-{}-{n}", std::process::id()))
    }

    fn group_doc() -> Value {
        json!({"schema": [{"name": "Authors", "tokenizer": {"list": ","}}]})
    }

    const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

    fn spawn_server(workers: usize) -> (SocketAddr, dime_serve::ServerHandle) {
        let server =
            Server::bind(ServeConfig { workers, ..ServeConfig::default() }).expect("bind shard");
        let addr = server.local_addr();
        let handle = server.handle();
        std::thread::spawn(move || server.run());
        (addr, handle)
    }

    fn spawn_router(config: RouterConfig) -> (SocketAddr, RouterHandle) {
        let router = Router::bind(config).expect("bind router");
        let addr = router.local_addr();
        let handle = router.handle();
        std::thread::spawn(move || router.run());
        (addr, handle)
    }

    fn comparable(mut report: Value) -> Value {
        report.as_object_mut().expect("report object").remove("witnesses");
        report
    }

    #[test]
    fn routes_sessions_across_shards_and_rewrites_ids() {
        let (s0, h0) = spawn_server(2);
        let (s1, h1) = spawn_server(2);
        let (addr, router) = spawn_router(RouterConfig {
            shards: vec![
                ShardSpec { addr: s0.to_string(), follower: None },
                ShardSpec { addr: s1.to_string(), follower: None },
            ],
            pool_per_shard: 1,
            ..RouterConfig::default()
        });

        let mut client = Client::connect(addr).expect("connect router");
        let mut rids = Vec::new();
        for _ in 0..6 {
            let rid = client.create_session(&group_doc(), RULES).expect("create");
            client
                .add_entities(
                    rid,
                    &[json!(["ann, bob"]), json!(["ann, bob, carl"]), json!(["dora"])],
                )
                .expect("add");
            rids.push(rid);
        }
        // Router ids are globally unique even though each shard numbers
        // its own sessions from 1.
        let mut unique = rids.clone();
        unique.dedup();
        assert_eq!(unique.len(), rids.len());

        for &rid in &rids {
            let report = client.discovery(rid).expect("discovery");
            assert_eq!(report["mis_categorized"].as_array().expect("flagged").len(), 1);
        }

        // Global stats aggregate both shards and carry the cluster view.
        let stats = client.stats(None).expect("stats");
        assert_eq!(stats["sessions"]["live"].as_u64().expect("live"), 6);
        assert_eq!(stats["entities_added"].as_u64().expect("added"), 18);
        assert_eq!(stats["cluster"]["shards"].as_array().expect("shards").len(), 2);
        assert_eq!(stats["cluster"]["sessions_routed"], 6);
        assert!(stats["flag_latency"]["count"].as_u64().expect("latency") >= 6);

        // Trace fans out and merges phase aggregates.
        let trace = client.trace().expect("trace");
        let phases: Vec<&str> = trace["phases"]
            .as_array()
            .expect("phases")
            .iter()
            .map(|p| p["name"].as_str().expect("name"))
            .collect();
        assert!(phases.contains(&"flag"), "merged trace must carry flag phases: {phases:?}");

        // Close rewrites the router id back and forgets the mapping.
        let closed = client.close_session(rids[0]).expect("close");
        assert_eq!(closed["closed"].as_u64().expect("closed"), rids[0]);
        match client.discovery(rids[0]) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NoSuchSession),
            other => panic!("closed session must be gone, got {other:?}"),
        }

        router.shutdown();
        h0.shutdown();
        h1.shutdown();
    }

    #[test]
    fn rules_and_feedback_route_to_the_owning_shard() {
        let (s0, h0) = spawn_server(2);
        let (addr, router) = spawn_router(RouterConfig {
            shards: vec![ShardSpec { addr: s0.to_string(), follower: None }],
            pool_per_shard: 1,
            ..RouterConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect router");
        let rid = client.create_session(&group_doc(), RULES).expect("create");
        client
            .add_entities(rid, &[json!(["ann, bob"]), json!(["ann, bob, carl"]), json!(["dora"])])
            .expect("add");

        // The rules op lands on the owning shard under its local id, so a
        // list after an install reflects the installed spec.
        let spec = "same(X, Y) :- overlap(Authors) >= 3.\ndiff(X, Y) :- overlap(Authors) <= 0.\n";
        let installed = client.rules_install(rid, spec).expect("install through router");
        assert_eq!(installed["installed"]["positive"], 1);
        let listed = client.rules_list(rid).expect("list through router");
        assert!(listed["spec"].as_str().expect("spec").contains(">= 3"));

        // Feedback routes the same way and answers with the label count.
        let fb =
            client.feedback(rid, &[(0, true), (1, true), (2, false)], false).expect("feedback");
        assert_eq!(fb["labels"], 3);

        // A rejection passes through verbatim (not wrapped in unavailable).
        match client.rules_install(rid, "same(X, Y) :- nope(") {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::RuleRejected),
            other => panic!("bad spec must be rule_rejected, got {other:?}"),
        }

        // The strict flag survives the fan-through: a semantically
        // conflicting pair is rejected by the owning shard, and the
        // structured message names both rules.
        let conflicting =
            "same(X, Y) :- overlap(Authors) >= 1.\ndiff(X, Y) :- overlap(Authors) <= 1.\n";
        match client.rules_install_opts(rid, conflicting, true) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::RuleRejected);
                assert!(message.contains("conflict"), "{message}");
                assert!(message.contains("overlap(Authors) >= 1"), "{message}");
                assert!(message.contains("overlap(Authors) <= 1"), "{message}");
            }
            other => panic!("strict conflicting install must be rejected, got {other:?}"),
        }
        // Non-strict, the same spec installs and the warning rides back
        // through the router in the payload.
        let v = client.rules_install_opts(rid, conflicting, false).expect("non-strict install");
        assert_eq!(v["warnings"][0]["kind"], "conflict");

        router.shutdown();
        h0.shutdown();
    }

    #[test]
    fn dead_shard_is_a_retryable_unavailable() {
        // A port with nothing listening: bind, note the addr, drop.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let (addr, router) = spawn_router(RouterConfig {
            shards: vec![ShardSpec { addr: dead.to_string(), follower: None }],
            pool_per_shard: 1,
            ..RouterConfig::default()
        });
        let mut client = Client::connect(addr).expect("connect router");
        match client.request(&Request::CreateSession { group: group_doc(), rules: RULES.into() }) {
            Ok(Response::Err { code, .. }) => {
                assert_eq!(code, ErrorCode::Unavailable);
                assert!(code.retryable());
            }
            other => panic!("expected unavailable, got {other:?}"),
        }
        router.shutdown();
    }

    /// The full failover story in-process: primary replicates to a
    /// follower, the primary dies, the prober promotes, and a retrying
    /// client sees bit-identical discovery output with one failover on
    /// the cluster record.
    #[test]
    fn failover_promotes_the_follower_and_preserves_sessions() {
        let dir_p = temp_dir("primary");
        let dir_f = temp_dir("follower");

        let follower = Follower::bind(FollowerConfig {
            data_dir: dir_f.clone(),
            fsync: FsyncPolicy::Never,
            workers: 2,
            ..FollowerConfig::default()
        })
        .expect("bind follower");
        let repl_addr = follower.local_addr();
        let follower_handle = follower.handle();
        let follower_runner = std::thread::spawn(move || follower.run());

        let link = FollowerLink::new(repl_addr.to_string(), Duration::from_secs(5));
        let primary = Server::bind(ServeConfig {
            workers: 2,
            store: Some(StoreConfig {
                data_dir: dir_p.clone(),
                fsync: FsyncPolicy::Never,
                snapshot_every: 4,
            }),
            replication: Some(WalTapHandle::new(Arc::new(link))),
            ..ServeConfig::default()
        })
        .expect("bind primary");
        let primary_addr = primary.local_addr();
        let primary_handle = primary.handle();
        std::thread::spawn(move || primary.run());

        let (addr, router) = spawn_router(RouterConfig {
            shards: vec![ShardSpec {
                addr: primary_addr.to_string(),
                follower: Some(repl_addr.to_string()),
            }],
            pool_per_shard: 1,
            health: Some(HealthConfig {
                interval: Duration::from_millis(50),
                fail_threshold: 2,
                connect_timeout: Duration::from_millis(250),
                promote_timeout: Duration::from_secs(10),
            }),
            ..RouterConfig::default()
        });

        let mut client = Client::connect(addr).expect("connect router");
        let rid = client.create_session(&group_doc(), RULES).expect("create");
        client
            .add_entities(rid, &[json!(["ann, bob"]), json!(["ann, bob, carl"]), json!(["dora"])])
            .expect("add");
        let before = comparable(client.discovery(rid).expect("discovery"));

        primary_handle.shutdown();

        // The primary drains gracefully, so requests may keep succeeding
        // against it for a moment; wait until the prober has actually
        // promoted before checking the replica's answers.
        let mut retrying = Client::connect(addr).expect("reconnect").with_retry(60, 25);
        let mut failovers = 0;
        for _ in 0..400 {
            let stats = retrying.stats(None).expect("stats");
            failovers = stats["cluster"]["failovers"].as_u64().unwrap_or(0);
            if failovers == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        assert_eq!(failovers, 1, "the prober must promote the follower");

        let after = comparable(retrying.discovery(rid).expect("post-failover discovery"));
        assert_eq!(after, before, "failover must preserve discovery output bit-identically");

        let stats = retrying.stats(None).expect("stats");
        assert_eq!(stats["cluster"]["shards"][0]["failovers"], 1);

        router.shutdown();
        follower_handle.shutdown();
        follower_runner.join().expect("follower runner").expect("clean follower run");
        std::fs::remove_dir_all(&dir_p).expect("cleanup primary");
        std::fs::remove_dir_all(&dir_f).expect("cleanup follower");
    }

    #[test]
    fn stats_merge_sums_counts_and_merges_histograms() {
        let a = json!({
            "requests": 3,
            "uptime_micros": 100,
            "sessions": {"live": 1, "created": 2, "closed": 1},
            "flag_latency": {"count": 1, "total_micros": 10, "max_micros": 10,
                              "mean_micros": 10, "p50_micros": 15, "p95_micros": 15,
                              "p99_micros": 15, "buckets": [[4, 1]]},
        });
        let b = json!({
            "requests": 5,
            "uptime_micros": 70,
            "sessions": {"live": 2, "created": 2, "closed": 0},
            "flag_latency": {"count": 2, "total_micros": 60, "max_micros": 30,
                              "mean_micros": 30, "p50_micros": 31, "p95_micros": 31,
                              "p99_micros": 31, "buckets": [[5, 2]]},
        });
        let merged = merge_stats(&[a, b]);
        assert_eq!(merged["requests"], 8);
        assert_eq!(merged["uptime_micros"], 100, "uptimes take the max, not the sum");
        assert_eq!(merged["sessions"]["live"], 3);
        assert_eq!(merged["flag_latency"]["count"], 3);
        assert_eq!(merged["flag_latency"]["total_micros"], 70);
        assert_eq!(merged["flag_latency"]["max_micros"], 30);
        assert_eq!(merged["flag_latency"]["buckets"], json!([[4, 1], [5, 2]]));
        // Quantiles recomputed over the merged buckets: 2 of 3 samples in
        // bucket 5 puts the p95 at that bucket's top.
        assert_eq!(merged["flag_latency"]["p95_micros"], 31);
    }

    #[test]
    fn trace_merge_folds_by_name_kind_and_rule() {
        let a = json!({
            "phases": [{"name": "flag", "count": 2, "total_ns": 100}],
            "counters": {"pairs_verified": 7},
            "rule_hits": [{"kind": "positive", "rule": 0, "hits": 3}],
            "histograms": [{"name": "flag_micros", "count": 1, "total": 10, "max": 10,
                             "mean": 10, "p50": 15, "p95": 15, "p99": 15,
                             "buckets": [[4, 1]]}],
            "spans": 4,
            "dropped_spans": 0,
        });
        let b = json!({
            "phases": [{"name": "flag", "count": 1, "total_ns": 50},
                        {"name": "recover", "count": 1, "total_ns": 9}],
            "counters": {"pairs_verified": 5, "entities_added": 2},
            "rule_hits": [{"kind": "positive", "rule": 0, "hits": 2},
                           {"kind": "negative", "rule": 1, "hits": 1}],
            "histograms": [],
            "spans": 1,
            "dropped_spans": 2,
        });
        let merged = merge_trace(&[a, b]);
        let phases = merged["phases"].as_array().expect("phases");
        let flag = phases.iter().find(|p| p["name"] == "flag").expect("flag phase");
        assert_eq!(flag["count"], 3);
        assert_eq!(flag["total_ns"], 150);
        assert_eq!(phases.len(), 2);
        assert_eq!(merged["counters"]["pairs_verified"], 12);
        assert_eq!(merged["counters"]["entities_added"], 2);
        let hits = merged["rule_hits"].as_array().expect("rule hits");
        assert_eq!(hits.len(), 2);
        let pos = hits.iter().find(|r| r["kind"] == "positive").expect("positive");
        assert_eq!(pos["hits"], 5);
        assert_eq!(merged["histograms"][0]["name"], "flag_micros");
        assert_eq!(merged["spans"], 5);
        assert_eq!(merged["dropped_spans"], 2);
    }
}
