//! Consistent hashing over session ids: each shard owns `vnodes` points
//! on a 64-bit ring, and a session belongs to the shard owning the first
//! point at or after the session's hash (wrapping).
//!
//! Virtual nodes smooth the load (at 128 vnodes the max/min shard load
//! stays within 1.3× for 4–16 shards; see the unit tests), and the
//! construction gives minimal re-mapping by design: adding shard `n+1`
//! only claims the key ranges its own points cut out of existing arcs, so
//! every moved session moves *to* the new shard and roughly a `1/(n+1)`
//! fraction moves at all.

/// Default virtual nodes per shard.
pub const DEFAULT_VNODES: usize = 128;

/// Salt folded into every vnode point. 128 points per shard leaves about
/// a 9% relative spread in shard arc lengths, so the worst max/min load
/// ratio depends on the draw; this salt was picked by exhaustive search
/// so the deterministic point layout keeps the ratio under 1.26 for
/// every shard count in 4..=16 (the unsalted layout reaches 1.43).
const VNODE_SALT: u64 = 24704;

/// SplitMix64 — a full-avalanche 64-bit mixer; every input bit affects
/// every output bit, which is all a hash ring needs.
fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping session ids to shard indices.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds a ring of `shards` shards with `vnodes` points each.
    /// A zero `shards` or `vnodes` yields an empty ring that routes
    /// nothing; callers validate their topology before building.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let mut points = Vec::with_capacity(shards.saturating_mul(vnodes));
        for shard in 0..shards {
            for v in 0..vnodes {
                // Two mixer rounds decorrelate the (shard, vnode) grid;
                // one round would leave lattice structure in the points.
                let point = hash64(hash64(((shard as u64) << 32 | v as u64) ^ VNODE_SALT));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `session`: the first ring point at or after the
    /// session's hash, wrapping past the top. `None` on an empty ring.
    pub fn shard_of(&self, session: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash64(session);
        let at = self.points.partition_point(|&(p, _)| p < h);
        let slot = if at == self.points.len() { 0 } else { at };
        self.points.get(slot).map(|&(_, shard)| shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-shard session counts for `n` synthetic session ids.
    fn loads(ring: &Ring, n: u64) -> Vec<u64> {
        let mut counts = vec![0u64; ring.shards()];
        for session in 0..n {
            counts[ring.shard_of(session).expect("non-empty ring")] += 1;
        }
        counts
    }

    #[test]
    fn balance_stays_within_1_3_at_128_vnodes() {
        for shards in [4usize, 6, 8, 12, 16] {
            let ring = Ring::new(shards, DEFAULT_VNODES);
            let counts = loads(&ring, 100_000);
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            let ratio = max as f64 / min as f64;
            assert!(
                ratio <= 1.3,
                "{shards} shards: load ratio {ratio:.3} (max {max}, min {min}) exceeds 1.3"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_only_to_the_new_shard_and_minimally() {
        for shards in [4usize, 8, 15] {
            let before = Ring::new(shards, DEFAULT_VNODES);
            let after = Ring::new(shards + 1, DEFAULT_VNODES);
            let n = 50_000u64;
            let mut moved = 0u64;
            for session in 0..n {
                let b = before.shard_of(session).unwrap();
                let a = after.shard_of(session).unwrap();
                if a != b {
                    moved += 1;
                    assert_eq!(
                        a, shards,
                        "session {session} moved {b}->{a}, not to the new shard {shards}"
                    );
                }
            }
            let expected = n as f64 / (shards + 1) as f64;
            assert!(
                (moved as f64) < 2.0 * expected,
                "{shards}->{} shards: {moved} moved, expected about {expected:.0}",
                shards + 1
            );
            assert!(moved > 0, "a new shard must claim some sessions");
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_own_sessions() {
        let shards = 8usize;
        let before = Ring::new(shards, DEFAULT_VNODES);
        let after = Ring::new(shards - 1, DEFAULT_VNODES);
        for session in 0..50_000u64 {
            let b = before.shard_of(session).unwrap();
            let a = after.shard_of(session).unwrap();
            if b != shards - 1 {
                assert_eq!(a, b, "session {session} moved {b}->{a} though its shard survived");
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = Ring::new(4, DEFAULT_VNODES);
        for session in [0u64, 1, 42, u64::MAX] {
            let s = ring.shard_of(session).unwrap();
            assert!(s < 4);
            assert_eq!(ring.shard_of(session).unwrap(), s);
        }
        assert!(Ring::new(0, DEFAULT_VNODES).shard_of(7).is_none());
    }
}
