//! Global token ordering for prefix filtering.
//!
//! Prefix signatures are only correct if *every* value sorts its tokens by
//! the *same* total order, and they are only *selective* if rare tokens
//! come first (so the short prefixes that become signatures contain the
//! least-shared tokens). [`GlobalOrder`] ranks tokens by ascending document
//! frequency with the token id as tie-breaker.

use crate::{Dictionary, TokenId};

/// A total order over interned tokens: rarer (lower document frequency)
/// tokens rank first.
#[derive(Debug, Clone)]
pub struct GlobalOrder {
    /// `rank[id]` = position of token `id` in the global order (0 = first).
    rank: Vec<u32>,
}

impl GlobalOrder {
    /// Builds the order from a dictionary's document frequencies.
    pub fn from_dictionary(dict: &Dictionary) -> Self {
        let mut ids: Vec<TokenId> = (0..dict.len() as TokenId).collect();
        ids.sort_unstable_by_key(|&id| (dict.doc_freq(id), id));
        let mut rank = vec![0u32; dict.len()];
        for (pos, &id) in ids.iter().enumerate() {
            rank[id as usize] = pos as u32;
        }
        Self { rank }
    }

    /// Builds an order from explicit `(token, frequency)` pairs already
    /// expressed as dense ids — useful in tests.
    pub fn from_frequencies(freqs: &[u32]) -> Self {
        let mut ids: Vec<u32> = (0..freqs.len() as u32).collect();
        ids.sort_unstable_by_key(|&id| (freqs[id as usize], id));
        let mut rank = vec![0u32; freqs.len()];
        for (pos, &id) in ids.iter().enumerate() {
            rank[id as usize] = pos as u32;
        }
        Self { rank }
    }

    /// Rank of a token (0 = rarest). Tokens unknown to the order (interned
    /// after the order was built) rank last.
    pub fn rank(&self, id: TokenId) -> u32 {
        self.rank.get(id as usize).copied().unwrap_or(u32::MAX)
    }

    /// Sorts a token slice ascending by this order (rarest first). Tokens
    /// unknown to the order all rank last but stay mutually ordered by id,
    /// so the order remains *total* even for tokens interned later — the
    /// prefix-filter guarantee only needs consistency, not freshness.
    pub fn sort(&self, tokens: &mut [TokenId]) {
        tokens.sort_unstable_by_key(|&t| (self.rank(t), t));
    }

    /// Returns a copy of `tokens` sorted by this order.
    pub fn sorted(&self, tokens: &[TokenId]) -> Vec<TokenId> {
        let mut v = tokens.to_vec();
        self.sort(&mut v);
        v
    }

    /// Number of ranked tokens.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// Whether the order ranks no tokens.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_tokens_rank_first() {
        let mut d = Dictionary::new();
        let common = d.observe(&["the".into()])[0];
        d.observe(&["the".into()]);
        d.observe(&["the".into()]);
        let rare = d.observe(&["katara".into()])[0];
        let order = GlobalOrder::from_dictionary(&d);
        assert!(order.rank(rare) < order.rank(common));
    }

    #[test]
    fn unknown_tokens_rank_last() {
        let d = Dictionary::new();
        let order = GlobalOrder::from_dictionary(&d);
        assert_eq!(order.rank(42), u32::MAX);
    }

    #[test]
    fn sort_is_stable_total_order() {
        let order = GlobalOrder::from_frequencies(&[5, 1, 3, 1]);
        let mut v = vec![0, 1, 2, 3];
        order.sort(&mut v);
        // freq 1 tokens (ids 1,3, tie broken by id) then freq 3 then freq 5.
        assert_eq!(v, vec![1, 3, 2, 0]);
    }

    #[test]
    fn sorted_returns_copy() {
        let order = GlobalOrder::from_frequencies(&[2, 1]);
        let v = vec![0, 1];
        assert_eq!(order.sorted(&v), vec![1, 0]);
        assert_eq!(v, vec![0, 1]);
    }
}
