//! Prefix-filtering signature lengths (Section IV-B of the paper).
//!
//! A *signature set* for a predicate has the completeness guarantee: if two
//! values satisfy the predicate, their signature sets intersect. For
//! set-based and character-based predicates, the signature of a value is a
//! *prefix* of its tokens/grams sorted by a [`crate::GlobalOrder`]:
//!
//! * overlap ≥ θ → first `|v| − θ + 1` tokens;
//! * Jaccard ≥ θ → first `|v| − ⌈θ·|v|⌉ + 1` tokens;
//! * edit distance ≤ θ over q-grams → first `q·θ + 1` grams.
//!
//! The functions here compute prefix *lengths*; a length of 0 means the
//! value can never satisfy the predicate (e.g. fewer than θ tokens), so it
//! has an empty signature set and is pruned outright.

/// Prefix length for the predicate `overlap ≥ theta` on a value of
/// `len` tokens: `len − theta + 1`, or 0 when unsatisfiable.
///
/// ```
/// use dime_text::overlap_prefix_len;
/// assert_eq!(overlap_prefix_len(6, 2), 5);
/// assert_eq!(overlap_prefix_len(1, 2), 0); // can never share 2 tokens
/// assert_eq!(overlap_prefix_len(3, 0), 3); // trivial predicate: whole set
/// ```
pub fn overlap_prefix_len(len: usize, theta: usize) -> usize {
    if theta == 0 {
        return len; // `overlap ≥ 0` is trivially true; keep everything.
    }
    if len < theta {
        0
    } else {
        len - theta + 1
    }
}

/// Prefix length for `jaccard ≥ theta` on a value of `len` tokens:
/// `len − ⌈theta·len⌉ + 1`, or 0 when unsatisfiable.
///
/// Completeness: `J(a,b) ≥ θ` implies `|a∩b| ≥ θ·|a∪b| ≥ θ·len` for each
/// side, i.e. overlap ≥ `⌈θ·len⌉`, and the overlap prefix bound applies.
pub fn jaccard_prefix_len(len: usize, theta: f64) -> usize {
    assert!((0.0..=1.0).contains(&theta), "jaccard threshold must be in [0,1]");
    if len == 0 {
        // Empty vs empty has Jaccard 1; treat as unsatisfiable via prefixes
        // (callers handle empty values separately).
        return 0;
    }
    // −ε before ceil: a float product that lands a hair above the exact
    // bound must not shorten the prefix below soundness.
    let needed = ((theta * len as f64) - 1e-9).ceil().max(1.0) as usize;
    overlap_prefix_len(len, needed)
}

/// Signature count for `edit_distance ≤ theta` with `q`-grams:
/// `q·theta + 1` grams, or `None` when the value is a *wildcard*.
///
/// Completeness (Gravano et al.): one edit destroys at most `q` distinct
/// grams, so within distance θ the two gram sets differ by ≤ `q·θ` grams;
/// if **both** sets hold at least `q·θ + 1` grams, their `q·θ + 1` rarest
/// grams must intersect. A value with fewer distinct grams than that admits
/// no sound prefix signature — the count filter is vacuous for it — so this
/// returns `None` and the caller must treat the value as a wildcard that is
/// a candidate against everything.
pub fn edit_prefix_len(gram_count: usize, q: usize, theta: usize) -> Option<usize> {
    let n = q * theta + 1;
    (gram_count >= n).then_some(n)
}

/// Takes the length-`n` prefix of an order-sorted token slice.
pub fn prefix(sorted_tokens: &[u32], n: usize) -> &[u32] {
    &sorted_tokens[..n.min(sorted_tokens.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{intersection_size, jaccard, GlobalOrder};
    use proptest::prelude::*;

    #[test]
    fn overlap_lengths() {
        assert_eq!(overlap_prefix_len(5, 1), 5);
        assert_eq!(overlap_prefix_len(5, 5), 1);
        assert_eq!(overlap_prefix_len(5, 6), 0);
    }

    #[test]
    fn jaccard_lengths() {
        // len 4, θ=0.5 → need 2 common → prefix 3.
        assert_eq!(jaccard_prefix_len(4, 0.5), 3);
        assert_eq!(jaccard_prefix_len(4, 1.0), 1);
        assert_eq!(jaccard_prefix_len(0, 0.5), 0);
    }

    #[test]
    fn edit_lengths() {
        assert_eq!(edit_prefix_len(10, 2, 1), Some(3));
        assert_eq!(edit_prefix_len(2, 2, 3), None); // too few grams → wildcard
        assert_eq!(edit_prefix_len(7, 2, 3), Some(7));
    }

    #[test]
    fn prefix_slicing() {
        assert_eq!(prefix(&[9, 8, 7], 2), &[9, 8]);
        assert_eq!(prefix(&[9], 5), &[9]);
    }

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::btree_set(0u32..60, 1..20)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        /// The core completeness property: overlap ≥ θ ⇒ prefixes intersect.
        #[test]
        fn prop_overlap_filter_complete(a in sorted_set(), b in sorted_set(), theta in 1usize..6, freqs in proptest::collection::vec(0u32..10, 60)) {
            let order = GlobalOrder::from_frequencies(&freqs);
            let ov = intersection_size(&a, &b);
            if ov >= theta {
                let sa = order.sorted(&a);
                let sb = order.sorted(&b);
                let pa = prefix(&sa, overlap_prefix_len(sa.len(), theta));
                let pb = prefix(&sb, overlap_prefix_len(sb.len(), theta));
                let share = pa.iter().any(|x| pb.contains(x));
                prop_assert!(share, "overlap {ov} ≥ {theta} but prefixes disjoint");
            }
        }

        /// Jaccard ≥ θ ⇒ Jaccard prefixes intersect.
        #[test]
        fn prop_jaccard_filter_complete(a in sorted_set(), b in sorted_set(), theta in 0.1f64..1.0, freqs in proptest::collection::vec(0u32..10, 60)) {
            let order = GlobalOrder::from_frequencies(&freqs);
            if jaccard(&a, &b) >= theta {
                let sa = order.sorted(&a);
                let sb = order.sorted(&b);
                let pa = prefix(&sa, jaccard_prefix_len(sa.len(), theta));
                let pb = prefix(&sb, jaccard_prefix_len(sb.len(), theta));
                prop_assert!(pa.iter().any(|x| pb.contains(x)));
            }
        }

        /// Edit distance ≤ θ ⇒ q-gram prefixes intersect.
        #[test]
        fn prop_edit_filter_complete(s in "[a-c]{4,12}", edits in 0usize..3, q in 2usize..4) {
            use crate::{levenshtein, qgrams};
            // Mutate `s` by `edits` substitutions.
            let mut chars: Vec<char> = s.chars().collect();
            for k in 0..edits {
                let i = (k * 7) % chars.len();
                chars[i] = if chars[i] == 'z' { 'y' } else { 'z' };
            }
            let t: String = chars.into_iter().collect();
            let d = levenshtein(&s, &t);
            let theta = d; // exactly tight threshold
            let ga = qgrams(&s, q);
            let gb = qgrams(&t, q);
            // Build a frequency order over grams.
            let mut all: Vec<String> = ga.iter().chain(gb.iter()).cloned().collect();
            all.sort();
            all.dedup();
            let idx = |g: &String| all.binary_search(g).unwrap() as u32;
            let sa: Vec<u32> = ga.iter().map(idx).collect();
            let sb: Vec<u32> = gb.iter().map(idx).collect();
            match (edit_prefix_len(sa.len(), q, theta), edit_prefix_len(sb.len(), q, theta)) {
                (Some(la), Some(lb)) => {
                    let pa = &sa[..la];
                    let pb = &sb[..lb];
                    prop_assert!(pa.iter().any(|x| pb.contains(x)),
                        "d={d} θ={theta} but gram prefixes disjoint");
                }
                // Wildcard: no signature-based claim is made, trivially sound.
                _ => {}
            }
        }
    }
}
