//! String interning with document-frequency tracking.
//!
//! Every token that appears in a dataset is interned once into a
//! [`Dictionary`], which maps it to a dense [`TokenId`]. Entities then store
//! attribute values as sorted `Vec<TokenId>`, so set-similarity computations
//! (overlap, Jaccard, …) become integer merge-joins instead of string
//! comparisons.
//!
//! The dictionary also counts *document frequency* — in how many attribute
//! values a token appears — which is what the prefix-filtering signature
//! scheme of DIME⁺ uses as its global token order (rare tokens first, so the
//! prefixes that become signatures are maximally selective).

use std::collections::HashMap;

/// A dense identifier for an interned token.
///
/// Ids are assigned in first-seen order and are stable for the lifetime of
/// the [`Dictionary`].
pub type TokenId = u32;

/// An interning dictionary over tokens with document-frequency counts.
///
/// # Examples
///
/// ```
/// use dime_text::Dictionary;
///
/// let mut dict = Dictionary::new();
/// let a = dict.intern("nan");
/// let b = dict.intern("tang");
/// assert_ne!(a, b);
/// assert_eq!(dict.intern("nan"), a); // idempotent
/// assert_eq!(dict.resolve(a), Some("nan"));
/// assert_eq!(dict.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_token: HashMap<String, TokenId>,
    tokens: Vec<String>,
    doc_freq: Vec<u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `n` distinct tokens.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_token: HashMap::with_capacity(n),
            tokens: Vec::with_capacity(n),
            doc_freq: Vec::with_capacity(n),
        }
    }

    /// Interns `token`, returning its id. Repeated calls with the same token
    /// return the same id and do **not** bump document frequency (use
    /// [`Dictionary::observe`] for that).
    pub fn intern(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.by_token.get(token) {
            return id;
        }
        let id = self.tokens.len() as TokenId;
        self.by_token.insert(token.to_owned(), id);
        self.tokens.push(token.to_owned());
        self.doc_freq.push(0);
        id
    }

    /// Interns every token of one attribute *value* and records one document
    /// occurrence per **distinct** token in the value.
    ///
    /// Returns the sorted, deduplicated token-id set of the value — the
    /// canonical representation entities store.
    pub fn observe(&mut self, value_tokens: &[String]) -> Vec<TokenId> {
        let mut ids: Vec<TokenId> = value_tokens.iter().map(|t| self.intern(t)).collect();
        ids.sort_unstable();
        ids.dedup();
        for &id in &ids {
            self.doc_freq[id as usize] += 1;
        }
        ids
    }

    /// Looks up an already-interned token without inserting.
    pub fn get(&self, token: &str) -> Option<TokenId> {
        self.by_token.get(token).copied()
    }

    /// Resolves an id back to its token string.
    pub fn resolve(&self, id: TokenId) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// The document frequency of a token: how many values it was
    /// [observed](Dictionary::observe) in.
    pub fn doc_freq(&self, id: TokenId) -> u32 {
        self.doc_freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterates over `(id, token, doc_freq)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str, u32)> {
        self.tokens
            .iter()
            .zip(self.doc_freq.iter())
            .enumerate()
            .map(|(i, (t, &df))| (i as TokenId, t.as_str(), df))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("sigmod");
        assert_eq!(d.intern("sigmod"), a);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn observe_dedups_and_sorts() {
        let mut d = Dictionary::new();
        let ids = d.observe(&strs(&["b", "a", "b", "c"]));
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn doc_freq_counts_values_not_occurrences() {
        let mut d = Dictionary::new();
        d.observe(&strs(&["x", "x", "y"]));
        d.observe(&strs(&["x"]));
        let x = d.get("x").unwrap();
        let y = d.get("y").unwrap();
        assert_eq!(d.doc_freq(x), 2); // two values contained x
        assert_eq!(d.doc_freq(y), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("vldb");
        assert_eq!(d.resolve(id), Some("vldb"));
        assert_eq!(d.resolve(999), None);
    }

    #[test]
    fn get_does_not_insert() {
        let d = Dictionary::new();
        assert_eq!(d.get("absent"), None);
        assert!(d.is_empty());
    }

    #[test]
    fn iter_yields_all() {
        let mut d = Dictionary::new();
        d.observe(&strs(&["a", "b"]));
        let all: Vec<_> = d.iter().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, "a");
    }
}
