//! Myers' bit-parallel edit distance (Myers 1999, Hyyrö 2003).
//!
//! The verify hot path computes Levenshtein distances by the million; the
//! classic DP in [`crate::levenshtein`] costs `O(|a|·|b|)` cell updates per
//! pair. This module processes 64 pattern positions per machine word
//! instead:
//!
//! * **single-word fast path** — patterns of ≤ 64 chars (virtually every
//!   name/title attribute) run one word-sized column update per text char:
//!   `O(|b|)` word ops, branch-free except the score tap at the last bit;
//! * **multi-word block variant** — longer patterns split into ⌈m/64⌉
//!   vertical blocks with horizontal carries threaded between them
//!   (Hyyrö's `advance_block`), `O(⌈m/64⌉·|b|)` word ops;
//! * **banded fallback** — for very long strings under a small threshold
//!   `k`, the banded DP's `O(k·min)` beats the blocked variant's
//!   `O(⌈m/64⌉·n)`, so the bounded kernels switch over past
//!   `m > 256·(2k+1)`.
//!
//! The bounded variants support a threshold `k` with an exact early exit:
//! the running score can drop by at most 1 per remaining column, so once
//! `score − remaining > k` the pair can never verify.
//!
//! All scratch (Peq tables, char buffers, DP rows) is thread-local and
//! reused across calls — the kernels allocate nothing per pair after
//! warm-up. The `_bytes`/`_chars` variants work directly on symbol slices
//! (the packed-arena layout `dime-core` verifies from); the `&str`
//! entry points pick bytes for ASCII and decode to chars otherwise.
//!
//! [`crate::levenshtein`] (the plain DP) is kept as the differential-test
//! oracle; the proptests at the bottom pin every path of this module to it.

use crate::edit::banded_dp;
use std::cell::RefCell;

/// Machine word width: pattern positions packed per block.
const WORD: usize = 64;

/// Pattern length beyond which, per unit of `2k+1` band width, the banded
/// DP undercuts the blocked bit-parallel kernel.
const BANDED_CUTOVER: usize = 256;

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
    /// Char-decode buffers for the `&str` entry points, separate from the
    /// kernel scratch so a decoded call can re-enter the slice kernels
    /// (which borrow `SCRATCH`) without a double borrow.
    static DECODE: RefCell<(Vec<char>, Vec<char>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Reusable per-thread state. The `peq_bytes` table keeps the invariant
/// that it is all-zero *between* calls: each call fills only the rows of
/// bytes present in the pattern and re-zeroes exactly those rows before
/// returning, so the 256-row table never pays a full clear.
#[derive(Default)]
struct Scratch {
    /// Blocked Peq for byte patterns: row-major `256 × blocks` words.
    peq_bytes: Vec<u64>,
    /// Sorted distinct chars of the current char-mode pattern.
    uniq: Vec<char>,
    /// Blocked Peq rows parallel to `uniq`: `uniq.len() × blocks` words.
    peq_uniq: Vec<u64>,
    /// Vertical positive/negative delta words, one per block.
    pv: Vec<u64>,
    mv: Vec<u64>,
    /// DP rows for the banded fallback.
    row_prev: Vec<usize>,
    row_cur: Vec<usize>,
}

/// Exact Levenshtein distance via the bit-parallel kernels.
///
/// Same value as [`crate::levenshtein`] on every input (the DP remains the
/// test oracle), at a fraction of the cost for the ≤ 64-char patterns the
/// verify loop sees.
///
/// ```
/// use dime_text::edit_distance;
/// assert_eq!(edit_distance("kitten", "sitting"), 3);
/// assert_eq!(edit_distance("", "abc"), 3);
/// ```
pub fn edit_distance(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        edit_distance_bytes(a.as_bytes(), b.as_bytes())
    } else {
        DECODE.with(|d| {
            let (ca, cb) = &mut *d.borrow_mut();
            decode(a, b, ca, cb);
            edit_distance_chars(ca, cb)
        })
    }
}

/// Threshold-bounded distance: `Some(d)` iff `d ≤ max_dist`.
///
/// Drop-in agreement with [`crate::levenshtein_leq`], with the
/// bit-parallel column updates plus the score-based early exit.
///
/// ```
/// use dime_text::edit_distance_leq;
/// assert_eq!(edit_distance_leq("kitten", "sitting", 3), Some(3));
/// assert_eq!(edit_distance_leq("kitten", "sitting", 2), None);
/// ```
pub fn edit_distance_leq(a: &str, b: &str, max_dist: usize) -> Option<usize> {
    if a.is_ascii() && b.is_ascii() {
        edit_distance_leq_bytes(a.as_bytes(), b.as_bytes(), max_dist)
    } else {
        DECODE.with(|d| {
            let (ca, cb) = &mut *d.borrow_mut();
            decode(a, b, ca, cb);
            edit_distance_leq_chars(ca, cb, max_dist)
        })
    }
}

/// Exact distance over byte slices (one symbol per byte — equals char
/// distance exactly when both inputs are ASCII, the caller's contract in
/// the verify arena).
pub fn edit_distance_bytes(a: &[u8], b: &[u8]) -> usize {
    must(bounded_bytes(a, b, usize::MAX))
}

/// Bounded distance over byte slices; see [`edit_distance_bytes`].
pub fn edit_distance_leq_bytes(a: &[u8], b: &[u8], max_dist: usize) -> Option<usize> {
    bounded_bytes(a, b, max_dist)
}

/// Exact distance over char slices (the non-ASCII arena representation).
pub fn edit_distance_chars(a: &[char], b: &[char]) -> usize {
    must(bounded_chars(a, b, usize::MAX))
}

/// Bounded distance over char slices; see [`edit_distance_chars`].
pub fn edit_distance_leq_chars(a: &[char], b: &[char], max_dist: usize) -> Option<usize> {
    bounded_chars(a, b, max_dist)
}

fn decode(a: &str, b: &str, ca: &mut Vec<char>, cb: &mut Vec<char>) {
    ca.clear();
    ca.extend(a.chars());
    cb.clear();
    cb.extend(b.chars());
}

/// Unwraps a `k = usize::MAX` bounded run, where neither the length
/// pre-check nor the score early-exit can fire.
fn must(d: Option<usize>) -> usize {
    match d {
        Some(d) => d,
        None => usize::MAX,
    }
}

fn bounded_bytes(a: &[u8], b: &[u8], k: usize) -> Option<usize> {
    let (pat, txt) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if txt.len() - pat.len() > k {
        return None;
    }
    if pat.is_empty() {
        return Some(txt.len());
    }
    if pat.len() <= WORD {
        let mut peq = [0u64; 256];
        for (i, &c) in pat.iter().enumerate() {
            peq[c as usize] |= 1 << i;
        }
        return single_word(pat.len(), txt, |c: u8| peq[c as usize], k);
    }
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        if use_banded(pat.len(), k) {
            return banded_dp(pat, txt, k, &mut s.row_prev, &mut s.row_cur);
        }
        blocked_bytes(s, pat, txt, k)
    })
}

fn bounded_chars(a: &[char], b: &[char], k: usize) -> Option<usize> {
    let (pat, txt) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if txt.len() - pat.len() > k {
        return None;
    }
    if pat.is_empty() {
        return Some(txt.len());
    }
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        if pat.len() > WORD && use_banded(pat.len(), k) {
            return banded_dp(pat, txt, k, &mut s.row_prev, &mut s.row_cur);
        }
        chars_kernel(s, pat, txt, k)
    })
}

/// Whether the banded DP's `O((2k+1)·m)` undercuts blocked Myers'
/// `O(⌈m/64⌉·n)` for this pattern length and threshold.
fn use_banded(m: usize, k: usize) -> bool {
    k < usize::MAX / 4 && m > BANDED_CUTOVER.saturating_mul(2 * k + 1)
}

/// Single-word Myers: one column update per text symbol, score tracked at
/// pattern bit `m − 1`. Bits above `m − 1` hold garbage but never feed back
/// into lower bits (shifts and carries only move upward), so `pv` can start
/// as all-ones regardless of `m`.
#[inline]
fn single_word<T: Copy>(m: usize, txt: &[T], peq: impl Fn(T) -> u64, k: usize) -> Option<usize> {
    debug_assert!((1..=WORD).contains(&m));
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    let last = 1u64 << (m - 1);
    let n = txt.len();
    for (j, &c) in txt.iter().enumerate() {
        let eq = peq(c);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        }
        if mh & last != 0 {
            score -= 1;
        }
        // The `| 1` is the top-row boundary D[0][j] = j: a +1 horizontal
        // carry enters the column at pattern position 0.
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
        // Score drops by at most 1 per remaining column.
        if score > k && score - k > n - j - 1 {
            return None;
        }
    }
    (score <= k).then_some(score)
}

/// One block-column update of the multi-word variant (Hyyrö's
/// `advance_block`): consumes the horizontal delta `hin ∈ {−1, 0, +1}`
/// entering the block from above and returns the delta leaving at `last`.
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, eq0: u64, hin: i32, last: u64) -> i32 {
    let mut eq = eq0;
    if hin < 0 {
        eq |= 1;
    }
    let xv = eq | *mv;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let mut hout = 0i32;
    if ph & last != 0 {
        hout += 1;
    }
    if mh & last != 0 {
        hout -= 1;
    }
    ph <<= 1;
    mh <<= 1;
    if hin < 0 {
        mh |= 1;
    } else if hin > 0 {
        ph |= 1;
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Blocked kernel over pre-built Peq rows: `row(sym)` yields the `blocks`
/// Peq words for a text symbol (or `None` for symbols absent from the
/// pattern, i.e. an all-zero row).
#[inline]
fn blocked<'p, T: Copy>(
    m: usize,
    txt: &[T],
    row: impl Fn(T) -> Option<&'p [u64]>,
    pv: &mut Vec<u64>,
    mv: &mut Vec<u64>,
    k: usize,
) -> Option<usize> {
    let blocks = m.div_ceil(WORD);
    debug_assert!(blocks >= 2);
    pv.clear();
    pv.resize(blocks, !0u64);
    mv.clear();
    mv.resize(blocks, 0u64);
    let mut score = m;
    let top = 1u64 << ((m - 1) % WORD);
    let n = txt.len();
    for (j, &c) in txt.iter().enumerate() {
        let eqs = row(c);
        // The top-row boundary enters block 0 as a +1 carry.
        let mut carry = 1i32;
        for w in 0..blocks {
            let eq = eqs.map_or(0, |r| r[w]);
            let last = if w + 1 == blocks { top } else { 1u64 << (WORD - 1) };
            carry = advance_block(&mut pv[w], &mut mv[w], eq, carry, last);
        }
        score = (score as i64 + i64::from(carry)) as usize;
        if score > k && score - k > n - j - 1 {
            return None;
        }
    }
    (score <= k).then_some(score)
}

/// Blocked byte path: fills the 256-row Peq for the pattern's bytes, runs
/// the kernel, then re-zeroes exactly the touched rows (preserving the
/// all-zero-between-calls invariant without a 2 KiB memset).
fn blocked_bytes(s: &mut Scratch, pat: &[u8], txt: &[u8], k: usize) -> Option<usize> {
    let blocks = pat.len().div_ceil(WORD);
    let need = 256 * blocks;
    if s.peq_bytes.len() < need {
        // Freshly grown entries are zero, and every earlier call re-zeroed
        // the rows it touched, so the whole table stays all-zero between
        // calls — growth never needs a full clear. A larger-than-needed
        // table is fine: row `c` lives at `c * blocks` regardless of the
        // table's total length.
        s.peq_bytes.resize(need, 0);
    }
    for (i, &c) in pat.iter().enumerate() {
        s.peq_bytes[c as usize * blocks + i / WORD] |= 1 << (i % WORD);
    }
    let peq = &s.peq_bytes;
    let result = blocked(
        pat.len(),
        txt,
        |c: u8| Some(&peq[c as usize * blocks..c as usize * blocks + blocks]),
        &mut s.pv,
        &mut s.mv,
        k,
    );
    for &c in pat {
        let base = c as usize * blocks;
        s.peq_bytes[base..base + blocks].iter_mut().for_each(|w| *w = 0);
    }
    result
}

/// Char path (pattern already the shorter side): builds a sorted
/// unique-char table with per-char Peq rows, then runs single-word or
/// blocked.
fn chars_kernel(s: &mut Scratch, pat: &[char], txt: &[char], k: usize) -> Option<usize> {
    let m = pat.len();
    s.uniq.clear();
    s.uniq.extend_from_slice(pat);
    s.uniq.sort_unstable();
    s.uniq.dedup();
    let blocks = m.div_ceil(WORD);
    s.peq_uniq.clear();
    s.peq_uniq.resize(s.uniq.len() * blocks, 0);
    for (i, &c) in pat.iter().enumerate() {
        // Every pattern char is in `uniq` by construction.
        let r = s.uniq.binary_search(&c).unwrap_or(usize::MAX);
        s.peq_uniq[r * blocks + i / WORD] |= 1 << (i % WORD);
    }
    let (uniq, peq) = (&s.uniq, &s.peq_uniq);
    if m <= WORD {
        single_word(m, txt, |c: char| uniq.binary_search(&c).map_or(0, |r| peq[r]), k)
    } else {
        blocked(
            m,
            txt,
            |c: char| uniq.binary_search(&c).ok().map(|r| &peq[r * blocks..r * blocks + blocks]),
            &mut s.pv,
            &mut s.mv,
            k,
        )
    }
}

/// Exact distance over char slices via the plain DP — used by tests to
/// pin the slice kernels without round-tripping through `&str`.
#[cfg(test)]
fn dp_chars(a: &[char], b: &[char]) -> usize {
    let (mut p, mut c) = (Vec::new(), Vec::new());
    crate::edit::full_dp(a, b, &mut p, &mut c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{levenshtein, levenshtein_leq};
    use proptest::prelude::*;

    #[test]
    fn classic_cases() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("a", ""), 1);
        assert_eq!(edit_distance("gumbo", "gambol"), 2);
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(edit_distance("özsu", "ozsu"), 1);
        assert_eq!(edit_distance("ギター", "ギターズ"), 1);
        assert_eq!(edit_distance("ozsu", "özsu"), 1); // mixed ascii/unicode
    }

    #[test]
    fn word_boundary_lengths() {
        // Pattern lengths straddling the 64-char word boundary exercise the
        // single-word/blocked dispatch and the partial top block.
        for m in [63usize, 64, 65, 127, 128, 129] {
            let a: String = "ab".chars().cycle().take(m).collect();
            let mut b = a.clone();
            b.replace_range(0..1, "x");
            b.push('y');
            assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b), "m={m}");
            for t in 0..4 {
                assert_eq!(edit_distance_leq(&a, &b, t), levenshtein_leq(&a, &b, t), "m={m} t={t}");
            }
        }
    }

    #[test]
    fn leq_threshold_edges() {
        let pairs = [("kitten", "sitting"), ("", "abc"), ("abc", "abc"), ("nan tang", "n j tang")];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            for t in 0..=d + 2 {
                let got = edit_distance_leq(a, b, t);
                if t >= d {
                    assert_eq!(got, Some(d), "{a:?} vs {b:?} @ {t}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} @ {t}");
                }
            }
        }
    }

    #[test]
    fn long_adversarial_pair_is_bounded() {
        // Long strings under a small threshold take the banded fallback:
        // O(k·min) work, never the full n·m scan.
        let a = "a".repeat(5_000);
        let b = "b".repeat(5_000);
        assert_eq!(edit_distance_leq(&a, &b, 3), None);
        assert_eq!(edit_distance_leq(&a, &b, 4_999), None);
        assert_eq!(edit_distance_leq(&a, &b, 5_000), Some(5_000));
        assert!(use_banded(5_000, 3), "long pair under small k must band");
        assert!(!use_banded(5_000, 4_999), "near-full band must stay bit-parallel");
    }

    #[test]
    fn slice_kernels_match_str_entry_points() {
        let a = "hierarchical indexing approach";
        let b = "hierarchical indexing approaches";
        assert_eq!(edit_distance_bytes(a.as_bytes(), b.as_bytes()), edit_distance(a, b));
        let ca: Vec<char> = a.chars().collect();
        let cb: Vec<char> = b.chars().collect();
        assert_eq!(edit_distance_chars(&ca, &cb), edit_distance(a, b));
        assert_eq!(edit_distance_leq_chars(&ca, &cb, 2), edit_distance_leq(a, b, 2));
        assert_eq!(edit_distance_leq_bytes(a.as_bytes(), b.as_bytes(), 1), None);
    }

    #[test]
    fn scratch_reuse_across_strides() {
        // Exercise the peq_bytes stride-change paths: grow, shrink, regrow.
        let long_a = "abcd".repeat(40); // 160 chars → 3 blocks
        let long_b = "abce".repeat(40);
        let mid_a = "xy".repeat(40); // 80 chars → 2 blocks
        let mid_b = "xz".repeat(40);
        assert_eq!(edit_distance(&long_a, &long_b), levenshtein(&long_a, &long_b));
        assert_eq!(edit_distance(&mid_a, &mid_b), levenshtein(&mid_a, &mid_b));
        assert_eq!(edit_distance(&long_a, &long_b), levenshtein(&long_a, &long_b));
    }

    proptest! {
        #[test]
        fn prop_matches_dp_ascii(a in "[a-e ]{0,40}", b in "[a-e ]{0,40}") {
            prop_assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
        }

        #[test]
        fn prop_matches_dp_unicode(a in "[aéß☃]{0,20}", b in "[aéß☃]{0,20}") {
            prop_assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
        }

        #[test]
        fn prop_matches_dp_across_word_boundary(
            a in "[ab]{50,90}",
            b in "[ab]{50,90}",
        ) {
            prop_assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
        }

        #[test]
        fn prop_matches_dp_blocked_unicode(a in "[aé]{60,80}", b in "[aé]{60,80}") {
            prop_assert_eq!(edit_distance(&a, &b), levenshtein(&a, &b));
        }

        #[test]
        fn prop_leq_matches_dp(a in "[a-c]{0,70}", b in "[a-c]{0,70}", t in 0usize..8) {
            prop_assert_eq!(edit_distance_leq(&a, &b, t), levenshtein_leq(&a, &b, t));
        }

        #[test]
        fn prop_leq_exact_at_threshold(a in "[a-d]{0,30}", b in "[a-d]{0,30}") {
            // k = d exactly: the early exit must not misfire on the edge.
            let d = levenshtein(&a, &b);
            prop_assert_eq!(edit_distance_leq(&a, &b, d), Some(d));
            if d > 0 {
                prop_assert_eq!(edit_distance_leq(&a, &b, d - 1), None);
            }
        }

        #[test]
        fn prop_char_slices_match_dp(a in "[aé]{0,70}", b in "[aé]{0,70}", t in 0usize..5) {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            let d = dp_chars(&ca, &cb);
            prop_assert_eq!(edit_distance_chars(&ca, &cb), d);
            let want = (d <= t).then_some(d);
            prop_assert_eq!(edit_distance_leq_chars(&ca, &cb, t), want);
        }
    }
}
