//! Positional-free q-gram extraction for character-based signatures.
//!
//! The q-gram prefix scheme of Gravano et al. (used by DIME⁺ for edit
//! distance) needs the *set* of substrings of length `q` of a value. Two
//! strings within edit distance `θ` differ in at most `q·θ` grams, so after
//! sorting grams by a global (rarity) order, the first `q·θ + 1` grams of
//! each string must intersect — that prefix is the signature.

/// Extracts the deduplicated set of `q`-grams of `s` (as owned strings).
///
/// Strings shorter than `q` yield their entirety as a single gram so that
/// very short values still have a non-empty signature.
///
/// ```
/// use dime_text::qgrams;
/// let g = qgrams("vldb", 2);
/// assert_eq!(g, vec!["db", "ld", "vl"]); // lexicographically sorted
/// assert_eq!(qgrams("ab", 3), vec!["ab"]);
/// ```
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be ≥ 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() < q {
        return vec![chars.iter().collect()];
    }
    let mut grams: Vec<String> = chars.windows(q).map(|w| w.iter().collect()).collect();
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Number of grams (before dedup) a string of `len` chars produces.
pub fn gram_count(len: usize, q: usize) -> usize {
    if len == 0 {
        0
    } else if len < q {
        1
    } else {
        len - q + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_extraction() {
        assert_eq!(qgrams("abc", 2), vec!["ab", "bc"]);
        assert_eq!(qgrams("aaaa", 2), vec!["aa"]); // dedup
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    fn short_strings_become_one_gram() {
        assert_eq!(qgrams("x", 3), vec!["x"]);
    }

    #[test]
    #[should_panic(expected = "q must be")]
    fn zero_q_panics() {
        let _ = qgrams("abc", 0);
    }

    #[test]
    fn gram_count_formula() {
        assert_eq!(gram_count(0, 2), 0);
        assert_eq!(gram_count(1, 2), 1);
        assert_eq!(gram_count(5, 2), 4);
    }

    proptest! {
        #[test]
        fn prop_grams_are_substrings(s in "[a-d]{0,15}", q in 1usize..4) {
            for g in qgrams(&s, q) {
                prop_assert!(s.contains(&g), "{g:?} not in {s:?}");
            }
        }

        #[test]
        fn prop_sorted_dedup(s in "[a-d]{0,15}", q in 1usize..4) {
            let g = qgrams(&s, q);
            prop_assert!(g.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn prop_edit_one_changes_at_most_q_grams(s in "[a-c]{4,12}", i in 0usize..12, q in 1usize..4) {
            // Substituting one char destroys at most q distinct grams.
            let chars: Vec<char> = s.chars().collect();
            let i = i % chars.len();
            let mut t = chars.clone();
            t[i] = if t[i] == 'z' { 'y' } else { 'z' };
            let t: String = t.into_iter().collect();
            let ga = qgrams(&s, q);
            let gb = qgrams(&t, q);
            let lost = ga.iter().filter(|g| gb.binary_search(g).is_err()).count();
            prop_assert!(lost <= q, "lost {lost} > q {q}");
        }
    }
}
