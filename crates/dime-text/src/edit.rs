//! Character-based similarity: Levenshtein edit distance.
//!
//! Provides the full distance, a banded threshold-bounded variant with the
//! `O(θ · min(|a|, |b|))` cost the paper cites for verification, and a
//! normalized edit *similarity* in `[0, 1]` usable wherever a similarity
//! (rather than a distance) predicate is wanted.
//!
//! [`levenshtein`] and [`levenshtein_leq`] are the plain dynamic programs
//! — kept as the differential-test oracle for the bit-parallel kernels in
//! [`crate::edit_distance`] / [`crate::edit_distance_leq`] — but they are
//! allocation-free per call: ASCII inputs run directly over the byte
//! slices, non-ASCII inputs decode into thread-local char buffers, and the
//! DP rows themselves are thread-local scratch reused across calls.

use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<DpScratch> = RefCell::new(DpScratch::default());
}

/// Reusable per-thread DP state: two rows plus decoded char buffers.
#[derive(Default)]
struct DpScratch {
    prev: Vec<usize>,
    cur: Vec<usize>,
    chars_a: Vec<char>,
    chars_b: Vec<char>,
}

/// Plain Levenshtein distance (insert/delete/substitute, unit costs).
///
/// Runs in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space, with no per-call
/// allocation (thread-local scratch rows; ASCII inputs skip char decoding
/// entirely).
///
/// ```
/// use dime_text::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        if a.is_ascii() && b.is_ascii() {
            full_dp(a.as_bytes(), b.as_bytes(), &mut s.prev, &mut s.cur)
        } else {
            s.chars_a.clear();
            s.chars_a.extend(a.chars());
            s.chars_b.clear();
            s.chars_b.extend(b.chars());
            full_dp(&s.chars_a, &s.chars_b, &mut s.prev, &mut s.cur)
        }
    })
}

/// Threshold-bounded Levenshtein: returns `Some(d)` if the distance is
/// `d ≤ max_dist`, otherwise `None`.
///
/// Uses the banded dynamic program that only fills cells within `max_dist`
/// of the diagonal, giving the `O(θ · min(|a|, |b|))` verification cost the
/// paper assumes, plus a length-difference early exit. Like
/// [`levenshtein`], allocation-free per call.
///
/// ```
/// use dime_text::levenshtein_leq;
/// assert_eq!(levenshtein_leq("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_leq("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_leq("same", "same", 0), Some(0));
/// ```
pub fn levenshtein_leq(a: &str, b: &str, max_dist: usize) -> Option<usize> {
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        if a.is_ascii() && b.is_ascii() {
            banded_dp(a.as_bytes(), b.as_bytes(), max_dist, &mut s.prev, &mut s.cur)
        } else {
            s.chars_a.clear();
            s.chars_a.extend(a.chars());
            s.chars_b.clear();
            s.chars_b.extend(b.chars());
            banded_dp(&s.chars_a, &s.chars_b, max_dist, &mut s.prev, &mut s.cur)
        }
    })
}

/// The classic two-row DP over symbol slices (bytes or chars).
pub(crate) fn full_dp<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    prev.clear();
    prev.extend(0..=short.len());
    cur.clear();
    cur.resize(short.len() + 1, 0);
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[short.len()]
}

/// The banded DP over symbol slices: only cells within `max_dist` of the
/// diagonal are filled, and a row whose minimum exceeds `max_dist` aborts.
pub(crate) fn banded_dp<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    max_dist: usize,
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > max_dist {
        return None;
    }
    if short.is_empty() {
        return Some(long.len()); // ≤ max_dist by the check above
    }
    const BIG: usize = usize::MAX / 2;
    // Row over the *short* string; band half-width max_dist around the
    // diagonal j ≈ i.
    prev.clear();
    prev.resize(short.len() + 1, BIG);
    cur.clear();
    cur.resize(short.len() + 1, BIG);
    for (j, cell) in prev.iter_mut().enumerate().take(max_dist.min(short.len()) + 1) {
        *cell = j;
    }
    for (i, &lc) in long.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(max_dist);
        let hi = (row + max_dist).min(short.len());
        if lo > hi {
            return None;
        }
        // Sentinel the cells just outside this row's band: the buffers are
        // reused every other row, so they hold stale values from row-2 that
        // the next row (whose band may shift by one) would otherwise read.
        if lo >= 1 {
            cur[lo - 1] = BIG;
        }
        let mut row_min = BIG;
        if lo == 0 {
            cur[0] = row;
            row_min = row;
        }
        for j in lo.max(1)..=hi {
            let sc = short[j - 1];
            let sub = prev[j - 1] + usize::from(lc != sc);
            let best = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
            cur[j] = best;
            row_min = row_min.min(best);
        }
        if hi < short.len() {
            cur[hi + 1] = BIG;
        }
        if row_min > max_dist {
            return None;
        }
        std::mem::swap(prev, cur);
    }
    let d = prev[short.len()];
    (d <= max_dist).then_some(d)
}

/// Normalized edit similarity `1 − lev(a, b) / max(|a|, |b|)` in `[0, 1]`.
///
/// Two empty strings have similarity 1. The distance comes from the
/// bit-parallel kernel ([`crate::edit_distance`]), which returns the same
/// integer as [`levenshtein`] on every input, so the f64 result is
/// bit-identical to the DP-backed formula.
///
/// ```
/// use dime_text::edit_similarity;
/// assert_eq!(edit_similarity("abcd", "abcd"), 1.0);
/// assert_eq!(edit_similarity("abcd", "wxyz"), 0.0);
/// ```
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - crate::edit_distance(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("a", ""), 1);
    }

    #[test]
    fn unicode_chars_count_once() {
        assert_eq!(levenshtein("özsu", "ozsu"), 1);
    }

    #[test]
    fn leq_agrees_with_full() {
        let pairs = [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abc", "abc"),
            ("database", "databases"),
            ("nan tang", "n j tang"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            for t in 0..=d + 2 {
                let got = levenshtein_leq(a, b, t);
                if t >= d {
                    assert_eq!(got, Some(d), "{a:?} vs {b:?} @ {t}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} @ {t}");
                }
            }
        }
    }

    #[test]
    fn leq_length_diff_early_exit() {
        assert_eq!(levenshtein_leq("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn mixed_ascii_unicode_pairs() {
        // One ASCII and one non-ASCII operand take the char-decoding path.
        assert_eq!(levenshtein("ozsu", "özsu"), 1);
        assert_eq!(levenshtein_leq("ozsu", "özsu", 1), Some(1));
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("", "xy"), 0.0);
        let s = edit_similarity("sigmod", "sigmot");
        assert!(s > 0.8 && s < 1.0);
    }

    proptest! {
        #[test]
        fn prop_symmetric(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn prop_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn prop_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(levenshtein_leq(&a, &a, 0), Some(0));
        }

        #[test]
        fn prop_leq_matches_full(a in "[a-c]{0,10}", b in "[a-c]{0,10}", t in 0usize..6) {
            let d = levenshtein(&a, &b);
            let got = levenshtein_leq(&a, &b, t);
            if d <= t {
                prop_assert_eq!(got, Some(d));
            } else {
                prop_assert_eq!(got, None);
            }
        }

        #[test]
        fn prop_similarity_in_unit_interval(a in "[a-e]{0,10}", b in "[a-e]{0,10}") {
            let s = edit_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
