//! Tokenizers that turn raw attribute strings into token lists.
//!
//! DIME treats most attributes as *multi-valued*: `Authors` is a list of
//! names, `Also_viewed` is a list of ASINs, `Title` is a bag of words. The
//! tokenizer chosen per attribute decides what the unit of set similarity
//! is. Three are provided:
//!
//! * [`tokenize_words`] — lowercase alphanumeric word extraction, the right
//!   choice for free text (titles, descriptions);
//! * [`tokenize_list`] — split on a delimiter and trim, for explicit lists
//!   (author lists, ASIN lists);
//! * [`tokenize_whole`] — the whole (normalized) string as a single token,
//!   for identifier-like attributes.

/// How an attribute string is split into tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenizerKind {
    /// Lowercased maximal alphanumeric runs (`"KATARA: A Data…"` →
    /// `["katara", "a", "data", …]`).
    Words,
    /// Split on a delimiter, trim whitespace, lowercase
    /// (`"Nan Tang, Guoren Wang"` → `["nan tang", "guoren wang"]`).
    List(char),
    /// The entire trimmed, lowercased string as one token.
    Whole,
}

impl TokenizerKind {
    /// Applies this tokenizer to `value`.
    pub fn tokenize(&self, value: &str) -> Vec<String> {
        match self {
            TokenizerKind::Words => tokenize_words(value),
            TokenizerKind::List(d) => tokenize_list(value, *d),
            TokenizerKind::Whole => tokenize_whole(value),
        }
    }
}

/// Splits `value` into lowercase alphanumeric words.
///
/// Any non-alphanumeric character is a separator; empty tokens are dropped.
///
/// ```
/// use dime_text::tokenize_words;
/// assert_eq!(
///     tokenize_words("NADEEF: A generalized data-cleaning system"),
///     vec!["nadeef", "a", "generalized", "data", "cleaning", "system"]
/// );
/// ```
pub fn tokenize_words(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in value.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits `value` on `delim`, trims each piece, lowercases, drops empties.
///
/// ```
/// use dime_text::tokenize_list;
/// assert_eq!(
///     tokenize_list("Nan Tang, Guoren Wang, ", ','),
///     vec!["nan tang", "guoren wang"]
/// );
/// ```
pub fn tokenize_list(value: &str, delim: char) -> Vec<String> {
    value.split(delim).map(|p| p.trim().to_lowercase()).filter(|p| !p.is_empty()).collect()
}

/// Returns the whole trimmed, lowercased string as a single-element token
/// list (or an empty list for blank input).
pub fn tokenize_whole(value: &str) -> Vec<String> {
    let t = value.trim().to_lowercase();
    if t.is_empty() {
        Vec::new()
    } else {
        vec![t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_handles_punctuation_and_case() {
        assert_eq!(
            tokenize_words("Win: an efficient (XML) strategy!"),
            vec!["win", "an", "efficient", "xml", "strategy"]
        );
    }

    #[test]
    fn words_empty_input() {
        assert!(tokenize_words("  --- ").is_empty());
        assert!(tokenize_words("").is_empty());
    }

    #[test]
    fn words_unicode() {
        assert_eq!(tokenize_words("Tamer Özsu"), vec!["tamer", "özsu"]);
    }

    #[test]
    fn list_trims_and_drops_empty() {
        assert_eq!(tokenize_list(" a ;; b ; ", ';'), vec!["a", "b"]);
    }

    #[test]
    fn whole_is_single_token() {
        assert_eq!(tokenize_whole(" B000BTL0OA "), vec!["b000btl0oa"]);
        assert!(tokenize_whole("   ").is_empty());
    }

    #[test]
    fn kind_dispatch() {
        assert_eq!(TokenizerKind::Words.tokenize("a b"), vec!["a", "b"]);
        assert_eq!(TokenizerKind::List(',').tokenize("a,b"), vec!["a", "b"]);
        assert_eq!(TokenizerKind::Whole.tokenize("a b"), vec!["a b"]);
    }
}
