//! Set-based similarity functions over sorted token-id slices.
//!
//! All functions require their inputs to be **sorted and deduplicated**
//! (the representation produced by [`crate::Dictionary::observe`]); they run
//! as a single merge pass, `O(|a| + |b|)` — the cost model the paper uses
//! for set-based verification.

use crate::TokenId;

/// Size of the intersection of two sorted, deduplicated slices.
///
/// ```
/// use dime_text::intersection_size;
/// assert_eq!(intersection_size(&[1, 3, 5, 9], &[2, 3, 5, 7]), 2);
/// ```
pub fn intersection_size(a: &[TokenId], b: &[TokenId]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs must be sorted+dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs must be sorted+dedup");
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Overlap similarity `|a ∩ b|` — the raw number of common tokens.
///
/// This is the `f_ov` of the paper (e.g. "≥ 2 common authors").
pub fn overlap(a: &[TokenId], b: &[TokenId]) -> f64 {
    intersection_size(a, b) as f64
}

/// Jaccard similarity `|a ∩ b| / |a ∪ b|` in `[0, 1]`.
///
/// Returns 1.0 for two empty sets (they are identical), consistent with the
/// convention that a missing value only matches another missing value.
pub fn jaccard(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient `2|a ∩ b| / (|a| + |b|)` in `[0, 1]`.
pub fn dice(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Cosine similarity `|a ∩ b| / sqrt(|a|·|b|)` in `[0, 1]` for binary
/// token vectors.
pub fn cosine(a: &[TokenId], b: &[TokenId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// True iff the two sorted slices share at least one element.
///
/// Short-circuits on the first hit, so it is cheaper than
/// [`intersection_size`] when only existence matters (the signature filter).
pub fn has_overlap(a: &[TokenId], b: &[TokenId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intersection_basic() {
        assert_eq!(intersection_size(&[], &[]), 0);
        assert_eq!(intersection_size(&[1], &[]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(intersection_size(&[1, 4], &[2, 3]), 0);
    }

    #[test]
    fn overlap_counts() {
        assert_eq!(overlap(&[1, 2, 5], &[2, 5, 9]), 2.0);
    }

    #[test]
    fn jaccard_range_and_edges() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dice_and_cosine_edges() {
        assert_eq!(dice(&[], &[]), 1.0);
        assert_eq!(cosine(&[], &[]), 1.0);
        assert_eq!(cosine(&[1], &[]), 0.0);
        assert!((dice(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-12);
        assert!((cosine(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn has_overlap_short_circuit() {
        assert!(has_overlap(&[1, 9], &[9]));
        assert!(!has_overlap(&[1, 3], &[2, 4]));
    }

    fn sorted_set() -> impl Strategy<Value = Vec<TokenId>> {
        proptest::collection::btree_set(0u32..200, 0..30)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn prop_symmetry(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(intersection_size(&a, &b), intersection_size(&b, &a));
            prop_assert!((jaccard(&a, &b) - jaccard(&b, &a)).abs() < 1e-12);
            prop_assert!((dice(&a, &b) - dice(&b, &a)).abs() < 1e-12);
            prop_assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn prop_bounds(a in sorted_set(), b in sorted_set()) {
            let j = jaccard(&a, &b);
            let d = dice(&a, &b);
            let c = cosine(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            // Jaccard ≤ Dice always.
            prop_assert!(j <= d + 1e-12);
        }

        #[test]
        fn prop_identity(a in sorted_set()) {
            prop_assert_eq!(intersection_size(&a, &a), a.len());
            prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_has_overlap_agrees(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(has_overlap(&a, &b), intersection_size(&a, &b) > 0);
        }

        #[test]
        fn prop_intersection_matches_naive(a in sorted_set(), b in sorted_set()) {
            let naive = a.iter().filter(|x| b.contains(x)).count();
            prop_assert_eq!(intersection_size(&a, &b), naive);
        }
    }
}
