//! Set-based similarity functions over sorted token-id slices.
//!
//! All functions require their inputs to be **sorted and deduplicated**
//! (the representation produced by [`crate::Dictionary::observe`]). The
//! entry points ([`intersection_size`], [`has_overlap`]) dispatch between
//! two kernels by size skew:
//!
//! * a **merge pass**, `O(|a| + |b|)` — the cost model the paper uses for
//!   set-based verification, best when the inputs are similar in size;
//! * a **galloping** (exponential-search) pass, `O(|small| · log
//!   |large|)` — wins when one side is much smaller, as in the skewed
//!   candidate lists a rare-token signature probe produces.
//!
//! Both kernels return the same integer on every input, so the f64
//! similarity formulas built on them are bit-identical regardless of which
//! kernel ran. A third kernel — 64-bit bitset blocks for dense id ranges —
//! lives in [`crate::bitset`].

use crate::TokenId;

/// Size ratio above which galloping beats the merge pass: with
/// `|large| ≥ 16·|small|` the `log |large|` probes per small element cost
/// less than scanning the large side.
const GALLOP_RATIO: usize = 16;

/// Size of the intersection of two sorted, deduplicated slices.
///
/// Dispatches merge vs gallop by size skew; both kernels agree exactly.
///
/// ```
/// use dime_text::intersection_size;
/// assert_eq!(intersection_size(&[1, 3, 5, 9], &[2, 3, 5, 7]), 2);
/// ```
pub fn intersection_size(a: &[TokenId], b: &[TokenId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        intersection_size_gallop(small, large)
    } else {
        intersection_size_merge(small, large)
    }
}

/// The plain merge-pass kernel, `O(|a| + |b|)`.
///
/// Exposed so differential tests and the micro-benchmarks can pin the
/// adaptive kernels against it.
pub fn intersection_size_merge(a: &[TokenId], b: &[TokenId]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs must be sorted+dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs must be sorted+dedup");
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The galloping kernel: for each element of `small`, exponential-search
/// forward in `large` from the previous match position, then binary-search
/// within the bracketed window. `O(|small| · log |large|)`.
///
/// `small` need not actually be the shorter slice — the result is correct
/// either way — but the cost bound assumes it is.
pub fn intersection_size_gallop(small: &[TokenId], large: &[TokenId]) -> usize {
    debug_assert!(small.windows(2).all(|w| w[0] < w[1]), "lhs must be sorted+dedup");
    debug_assert!(large.windows(2).all(|w| w[0] < w[1]), "rhs must be sorted+dedup");
    let mut base = 0usize;
    let mut n = 0usize;
    for &x in small {
        let s = &large[base..];
        if s.is_empty() {
            break;
        }
        // Bracket the first element ≥ x between successive powers of two,
        // then binary-search the bracket.
        let mut bound = 1usize;
        while bound < s.len() && s[bound] < x {
            bound <<= 1;
        }
        let lo = bound >> 1;
        let hi = bound.min(s.len());
        base += lo + s[lo..hi].partition_point(|&v| v < x);
        if base < large.len() && large[base] == x {
            n += 1;
            base += 1;
        }
    }
    n
}

/// Overlap similarity `|a ∩ b|` — the raw number of common tokens.
///
/// This is the `f_ov` of the paper (e.g. "≥ 2 common authors").
pub fn overlap(a: &[TokenId], b: &[TokenId]) -> f64 {
    overlap_counts(intersection_size(a, b))
}

/// Jaccard similarity `|a ∩ b| / |a ∪ b|` in `[0, 1]`.
///
/// Returns 1.0 for two empty sets (they are identical), consistent with the
/// convention that a missing value only matches another missing value.
pub fn jaccard(a: &[TokenId], b: &[TokenId]) -> f64 {
    jaccard_counts(intersection_size(a, b), a.len(), b.len())
}

/// Dice coefficient `2|a ∩ b| / (|a| + |b|)` in `[0, 1]`.
pub fn dice(a: &[TokenId], b: &[TokenId]) -> f64 {
    dice_counts(intersection_size(a, b), a.len(), b.len())
}

/// Cosine similarity `|a ∩ b| / sqrt(|a|·|b|)` in `[0, 1]` for binary
/// token vectors.
pub fn cosine(a: &[TokenId], b: &[TokenId]) -> f64 {
    cosine_counts(intersection_size(a, b), a.len(), b.len())
}

/// [`overlap`] from a precomputed intersection size. Every kernel (merge,
/// gallop, bitset, arena) funnels through these `_counts` formulas so the
/// f64 results are bit-identical across engines.
pub fn overlap_counts(inter: usize) -> f64 {
    inter as f64
}

/// [`jaccard`] from a precomputed intersection size and the two set sizes.
pub fn jaccard_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let union = la + lb - inter;
    inter as f64 / union as f64
}

/// [`dice`] from a precomputed intersection size and the two set sizes.
pub fn dice_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (la + lb) as f64
}

/// [`cosine`] from a precomputed intersection size and the two set sizes.
pub fn cosine_counts(inter: usize, la: usize, lb: usize) -> f64 {
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    inter as f64 / ((la as f64) * (lb as f64)).sqrt()
}

/// True iff the two sorted slices share at least one element.
///
/// Short-circuits on the first hit, so it is cheaper than
/// [`intersection_size`] when only existence matters (the signature
/// filter). Skewed inputs gallop instead of merging.
pub fn has_overlap(a: &[TokenId], b: &[TokenId]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return false;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        let mut base = 0usize;
        for &x in small {
            let s = &large[base..];
            if s.is_empty() {
                return false;
            }
            let mut bound = 1usize;
            while bound < s.len() && s[bound] < x {
                bound <<= 1;
            }
            let lo = bound >> 1;
            let hi = bound.min(s.len());
            base += lo + s[lo..hi].partition_point(|&v| v < x);
            if base < large.len() && large[base] == x {
                return true;
            }
        }
        false
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intersection_basic() {
        assert_eq!(intersection_size(&[], &[]), 0);
        assert_eq!(intersection_size(&[1], &[]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(intersection_size(&[1, 4], &[2, 3]), 0);
    }

    #[test]
    fn gallop_matches_merge_on_skew() {
        let small = [7u32, 300, 301, 9999];
        let large: Vec<u32> = (0..10_000).step_by(3).collect();
        assert_eq!(
            intersection_size_gallop(&small, &large),
            intersection_size_merge(&small, &large)
        );
        // The dispatch picks gallop here (10000/3 elems vs 4).
        assert_eq!(intersection_size(&small, &large), intersection_size_merge(&small, &large));
    }

    #[test]
    fn gallop_extremes() {
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(intersection_size_gallop(&a, &a), a.len()); // identical
        let b: Vec<u32> = (1000..1100).collect();
        assert_eq!(intersection_size_gallop(&a, &b), 0); // disjoint, below
        assert_eq!(intersection_size_gallop(&b, &a), 0); // disjoint, above
        assert_eq!(intersection_size_gallop(&[], &a), 0);
        assert_eq!(intersection_size_gallop(&a, &[]), 0);
        assert_eq!(intersection_size_gallop(&[99], &a), 1); // last element
        assert_eq!(intersection_size_gallop(&[0], &a), 1); // first element
    }

    #[test]
    fn overlap_counts_test() {
        assert_eq!(overlap(&[1, 2, 5], &[2, 5, 9]), 2.0);
    }

    #[test]
    fn jaccard_range_and_edges() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dice_and_cosine_edges() {
        assert_eq!(dice(&[], &[]), 1.0);
        assert_eq!(cosine(&[], &[]), 1.0);
        assert_eq!(cosine(&[1], &[]), 0.0);
        assert!((dice(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-12);
        assert!((cosine(&[1, 2], &[2, 3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn has_overlap_short_circuit() {
        assert!(has_overlap(&[1, 9], &[9]));
        assert!(!has_overlap(&[1, 3], &[2, 4]));
    }

    #[test]
    fn has_overlap_gallop_path() {
        let large: Vec<u32> = (0..2_000).step_by(2).collect();
        assert!(has_overlap(&[1, 998], &large)); // 998 is even → hit
        assert!(!has_overlap(&[1, 999], &large)); // both odd → miss
        assert!(has_overlap(&large, &[1, 998])); // argument order irrelevant
    }

    fn sorted_set() -> impl Strategy<Value = Vec<TokenId>> {
        proptest::collection::btree_set(0u32..200, 0..30)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    /// Skewed pair: a few elements vs a large range, so the dispatch
    /// exercises the galloping kernel.
    fn skewed_pair() -> impl Strategy<Value = (Vec<TokenId>, Vec<TokenId>)> {
        (
            proptest::collection::btree_set(0u32..5_000, 0..6),
            proptest::collection::btree_set(0u32..5_000, 200..400),
        )
            .prop_map(|(a, b)| (a.into_iter().collect(), b.into_iter().collect()))
    }

    proptest! {
        #[test]
        fn prop_symmetry(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(intersection_size(&a, &b), intersection_size(&b, &a));
            prop_assert!((jaccard(&a, &b) - jaccard(&b, &a)).abs() < 1e-12);
            prop_assert!((dice(&a, &b) - dice(&b, &a)).abs() < 1e-12);
            prop_assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn prop_bounds(a in sorted_set(), b in sorted_set()) {
            let j = jaccard(&a, &b);
            let d = dice(&a, &b);
            let c = cosine(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            // Jaccard ≤ Dice always.
            prop_assert!(j <= d + 1e-12);
        }

        #[test]
        fn prop_identity(a in sorted_set()) {
            prop_assert_eq!(intersection_size(&a, &a), a.len());
            prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_has_overlap_agrees(a in sorted_set(), b in sorted_set()) {
            prop_assert_eq!(has_overlap(&a, &b), intersection_size(&a, &b) > 0);
        }

        #[test]
        fn prop_intersection_matches_naive(a in sorted_set(), b in sorted_set()) {
            let naive = a.iter().filter(|x| b.contains(x)).count();
            prop_assert_eq!(intersection_size(&a, &b), naive);
        }

        #[test]
        fn prop_gallop_matches_merge(a in sorted_set(), b in sorted_set()) {
            let merge = intersection_size_merge(&a, &b);
            prop_assert_eq!(intersection_size_gallop(&a, &b), merge);
            prop_assert_eq!(intersection_size_gallop(&b, &a), merge);
        }

        #[test]
        fn prop_gallop_matches_merge_skewed(pair in skewed_pair()) {
            let (a, b) = pair;
            let merge = intersection_size_merge(&a, &b);
            prop_assert_eq!(intersection_size_gallop(&a, &b), merge);
            prop_assert_eq!(intersection_size(&a, &b), merge);
            prop_assert_eq!(has_overlap(&a, &b), merge > 0);
        }
    }
}
