//! Sparse 64-bit block bitsets for dense token-id ranges.
//!
//! A sorted token-id set whose ids cluster (many ids per aligned 64-id
//! block) intersects faster as popcounts over machine words than as an
//! element-wise merge. [`BlockSet`] stores only the *occupied* blocks — a
//! sorted list of block keys (`id >> 6`) plus one `u64` word per key — so
//! sparse sets pay nothing for the empty range between their ids, and the
//! intersection is a merge over keys with one `popcount` per common block.
//!
//! The arena in `dime-core` stores the same representation as packed
//! slices; the free functions ([`block_build_into`],
//! [`block_intersection_size`]) operate on those raw `(keys, words)` pairs
//! so both the owned and the arena-packed forms share one kernel.
//!
//! Like every set kernel in this crate, the result is an exact integer —
//! identical to the merge pass — so the similarity formulas built on it
//! are bit-identical no matter which kernel ran.

use crate::TokenId;

/// Bits per block: ids `64k..64k+63` share block key `k`.
const BLOCK_BITS: u32 = 6;

/// A token-id set as sorted block keys + one occupancy word per key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockSet {
    keys: Vec<TokenId>,
    words: Vec<u64>,
}

impl BlockSet {
    /// Builds from a sorted, deduplicated id slice.
    pub fn build(sorted: &[TokenId]) -> Self {
        let mut s = Self::default();
        block_build_into(sorted, &mut s.keys, &mut s.words);
        s
    }

    /// Number of occupied 64-id blocks.
    pub fn block_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The raw `(keys, words)` representation.
    pub fn as_slices(&self) -> (&[TokenId], &[u64]) {
        (&self.keys, &self.words)
    }

    /// `|self ∩ other|` via key merge + per-block popcount.
    pub fn intersection_size(&self, other: &Self) -> usize {
        block_intersection_size(&self.keys, &self.words, &other.keys, &other.words)
    }
}

/// Appends the block representation of `sorted` (sorted, deduplicated ids)
/// into `keys`/`words` — the packed-arena form of [`BlockSet::build`]. The
/// two output vectors grow by the same count; callers slicing a packed
/// buffer record that count once.
pub fn block_build_into(sorted: &[TokenId], keys: &mut Vec<TokenId>, words: &mut Vec<u64>) {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "ids must be sorted+dedup");
    // Coalesce only within entries appended by *this* call: the buffer's
    // pre-existing tail belongs to the previous set in the packed layout,
    // and must not absorb this set's first block even when the keys match.
    let start = keys.len();
    for &id in sorted {
        let key = id >> BLOCK_BITS;
        let bit = 1u64 << (id & 63);
        if keys.len() > start && keys[keys.len() - 1] == key {
            let w = words.last_mut().expect("keys and words grow in lockstep");
            *w |= bit;
        } else {
            keys.push(key);
            words.push(bit);
        }
    }
}

/// `|a ∩ b|` over two block representations: merge the sorted key lists,
/// popcount the AND of words for each common key.
pub fn block_intersection_size(ak: &[TokenId], aw: &[u64], bk: &[TokenId], bw: &[u64]) -> usize {
    debug_assert_eq!(ak.len(), aw.len());
    debug_assert_eq!(bk.len(), bw.len());
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < ak.len() && j < bk.len() {
        match ak[i].cmp(&bk[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += (aw[i] & bw[j]).count_ones() as usize;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection_size_merge;
    use proptest::prelude::*;

    #[test]
    fn build_and_count() {
        let s = BlockSet::build(&[0, 1, 63, 64, 200]);
        assert_eq!(s.block_count(), 3); // blocks 0, 1, 3
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(BlockSet::build(&[]).is_empty());
    }

    #[test]
    fn intersection_matches_merge() {
        let a = [1u32, 2, 3, 64, 65, 129];
        let b = [2u32, 3, 65, 128, 129, 500];
        let (sa, sb) = (BlockSet::build(&a), BlockSet::build(&b));
        assert_eq!(sa.intersection_size(&sb), intersection_size_merge(&a, &b));
    }

    #[test]
    fn extremes() {
        let a: Vec<u32> = (0..256).collect();
        let sa = BlockSet::build(&a);
        assert_eq!(sa.intersection_size(&sa), 256); // identical, fully dense
        let b: Vec<u32> = (1000..1256).collect();
        let sb = BlockSet::build(&b);
        assert_eq!(sa.intersection_size(&sb), 0); // disjoint blocks
        let c: Vec<u32> = (0..256).step_by(64).collect();
        let sc = BlockSet::build(&c);
        assert_eq!(sa.intersection_size(&sc), 4); // shared blocks, sparse side
        assert_eq!(sa.intersection_size(&BlockSet::default()), 0);
    }

    #[test]
    fn packed_append_does_not_coalesce_across_sets() {
        // b's first id falls in the same 64-id block as a's last id; in the
        // packed layout the two sets must still get distinct entries.
        let a = [0u32, 65];
        let b = [66u32, 130];
        let mut keys = Vec::new();
        let mut words = Vec::new();
        block_build_into(&a, &mut keys, &mut words);
        let a_blocks = keys.len();
        block_build_into(&b, &mut keys, &mut words);
        assert_eq!(keys, vec![0, 1, 1, 2]);
        let got = block_intersection_size(
            &keys[..a_blocks],
            &words[..a_blocks],
            &keys[a_blocks..],
            &words[a_blocks..],
        );
        assert_eq!(got, intersection_size_merge(&a, &b));
        assert_eq!(got, 0);
    }

    fn sorted_set() -> impl Strategy<Value = Vec<TokenId>> {
        proptest::collection::btree_set(0u32..512, 0..80)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>())
    }

    proptest! {
        #[test]
        fn prop_matches_merge(a in sorted_set(), b in sorted_set()) {
            let (sa, sb) = (BlockSet::build(&a), BlockSet::build(&b));
            prop_assert_eq!(sa.intersection_size(&sb), intersection_size_merge(&a, &b));
            prop_assert_eq!(sb.intersection_size(&sa), intersection_size_merge(&a, &b));
        }

        #[test]
        fn prop_len_roundtrip(a in sorted_set()) {
            let s = BlockSet::build(&a);
            prop_assert_eq!(s.len(), a.len());
            prop_assert_eq!(s.intersection_size(&s), a.len());
        }

        #[test]
        fn prop_packed_form_agrees(a in sorted_set(), b in sorted_set()) {
            // Building into a shared packed buffer (the arena layout) gives
            // the same answer as the owned form.
            let mut keys = Vec::new();
            let mut words = Vec::new();
            block_build_into(&a, &mut keys, &mut words);
            let a_blocks = keys.len();
            block_build_into(&b, &mut keys, &mut words);
            let got = block_intersection_size(
                &keys[..a_blocks], &words[..a_blocks],
                &keys[a_blocks..], &words[a_blocks..],
            );
            prop_assert_eq!(got, intersection_size_merge(&a, &b));
        }
    }
}
