//! Text primitives for DIME: tokenization, string similarity, and the
//! prefix-filtering machinery behind DIME⁺ signatures.
//!
//! This crate implements the *symbolic* similarity layer of
//! "Discovering Mis-Categorized Entities" (ICDE 2018):
//!
//! * [`Dictionary`] — token interning + document frequency;
//! * [`TokenizerKind`] — per-attribute tokenization strategies;
//! * set-based similarities ([`overlap`], [`jaccard`], [`dice`], [`cosine`])
//!   over sorted token-id slices, with adaptive merge/gallop dispatch and a
//!   [`BlockSet`] bitset kernel for dense id ranges;
//! * character-based similarity ([`levenshtein`], [`levenshtein_leq`],
//!   [`edit_similarity`]) with the banded `O(θ·min)` verifier, plus the
//!   bit-parallel [`edit_distance`] / [`edit_distance_leq`] kernels the
//!   verify hot path uses (Myers single-word + blocked variants);
//! * [`qgrams`] extraction and [`GlobalOrder`]-sorted prefix signatures
//!   ([`overlap_prefix_len`], [`jaccard_prefix_len`], [`edit_prefix_len`]).
//!
//! Ontology-based (semantic) similarity lives in the `dime-ontology` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dictionary;
mod edit;
mod myers;
mod order;
mod prefix;
mod qgram;
mod setsim;
mod tokenize;

pub use bitset::{block_build_into, block_intersection_size, BlockSet};
pub use dictionary::{Dictionary, TokenId};
pub use edit::{edit_similarity, levenshtein, levenshtein_leq};
pub use myers::{
    edit_distance, edit_distance_bytes, edit_distance_chars, edit_distance_leq,
    edit_distance_leq_bytes, edit_distance_leq_chars,
};
pub use order::GlobalOrder;
pub use prefix::{edit_prefix_len, jaccard_prefix_len, overlap_prefix_len, prefix};
pub use qgram::{gram_count, qgrams};
pub use setsim::{
    cosine, cosine_counts, dice, dice_counts, has_overlap, intersection_size,
    intersection_size_gallop, intersection_size_merge, jaccard, jaccard_counts, overlap,
    overlap_counts,
};
pub use tokenize::{tokenize_list, tokenize_whole, tokenize_words, TokenizerKind};
