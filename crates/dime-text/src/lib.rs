//! Text primitives for DIME: tokenization, string similarity, and the
//! prefix-filtering machinery behind DIME⁺ signatures.
//!
//! This crate implements the *symbolic* similarity layer of
//! "Discovering Mis-Categorized Entities" (ICDE 2018):
//!
//! * [`Dictionary`] — token interning + document frequency;
//! * [`TokenizerKind`] — per-attribute tokenization strategies;
//! * set-based similarities ([`overlap`], [`jaccard`], [`dice`], [`cosine`])
//!   over sorted token-id slices;
//! * character-based similarity ([`levenshtein`], [`levenshtein_leq`],
//!   [`edit_similarity`]) with the banded `O(θ·min)` verifier;
//! * [`qgrams`] extraction and [`GlobalOrder`]-sorted prefix signatures
//!   ([`overlap_prefix_len`], [`jaccard_prefix_len`], [`edit_prefix_len`]).
//!
//! Ontology-based (semantic) similarity lives in the `dime-ontology` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
mod edit;
mod order;
mod prefix;
mod qgram;
mod setsim;
mod tokenize;

pub use dictionary::{Dictionary, TokenId};
pub use edit::{edit_similarity, levenshtein, levenshtein_leq};
pub use order::GlobalOrder;
pub use prefix::{edit_prefix_len, jaccard_prefix_len, overlap_prefix_len, prefix};
pub use qgram::{gram_count, qgrams};
pub use setsim::{cosine, dice, has_overlap, intersection_size, jaccard, overlap};
pub use tokenize::{tokenize_list, tokenize_whole, tokenize_words, TokenizerKind};
