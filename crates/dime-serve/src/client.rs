//! A small blocking client for the discovery service — the same framed
//! protocol as the server, one request/response pair at a time over a
//! persistent connection.
//!
//! ```no_run
//! use dime_serve::Client;
//! use serde_json::json;
//!
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! let session = client.create_session(
//!     &json!({"schema": [{"name": "Authors", "tokenizer": {"list": ","}}]}),
//!     "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0",
//! )?;
//! client.add_entities(session, &[json!(["ann, bob"]), json!(["ann, bob, carl"])])?;
//! let report = client.discovery(session)?;
//! println!("{}", report["pivot"]);
//! # Ok::<(), dime_serve::ClientError>(())
//! ```

use crate::protocol::{
    encode_frame, ErrorCode, Frame, FrameReader, ProtocolError, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use serde_json::Value;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a [`Client`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// The server's reply violated the wire protocol.
    Protocol(ProtocolError),
    /// The server answered with a structured error response.
    Server {
        /// The machine-readable code.
        code: ErrorCode,
        /// The human-readable description.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A blocking connection to a discovery server.
pub struct Client {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(BufReader::new(stream), DEFAULT_MAX_FRAME_BYTES),
            writer,
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(encode_frame(&req.to_value()).as_bytes())?;
        self.writer.flush()?;
        loop {
            match self.reader.read_frame()? {
                Frame::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-request",
                    )))
                }
                Frame::Oversized => {
                    return Err(ClientError::Protocol(ProtocolError::new(
                        ErrorCode::FrameTooLarge,
                        "response frame exceeded the client-side cap",
                    )))
                }
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let value: Value = serde_json::from_str(&line).map_err(|e| {
                        ClientError::Protocol(ProtocolError::new(
                            ErrorCode::BadFrame,
                            format!("unparsable response: {e}"),
                        ))
                    })?;
                    return Ok(Response::from_value(&value)?);
                }
            }
        }
    }

    /// Sends one request, mapping error responses to [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Value, ClientError> {
        match self.request(req)? {
            Response::Ok(v) => Ok(v),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Health check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Creates a session from a group document and a rules DSL string,
    /// returning its id.
    pub fn create_session(&mut self, group: &Value, rules: &str) -> Result<u64, ClientError> {
        let v =
            self.call(&Request::CreateSession { group: group.clone(), rules: rules.to_string() })?;
        v.get("session").and_then(Value::as_u64).ok_or_else(|| {
            ClientError::Protocol(ProtocolError::new(
                ErrorCode::BadFrame,
                "create_session reply carries no session id",
            ))
        })
    }

    /// Appends entity rows, returning the assigned ids.
    pub fn add_entities(
        &mut self,
        session: u64,
        entities: &[Value],
    ) -> Result<Vec<usize>, ClientError> {
        let v = self.call(&Request::AddEntities { session, entities: entities.to_vec() })?;
        let ids = v.get("ids").and_then(Value::as_array).ok_or_else(|| {
            ClientError::Protocol(ProtocolError::new(
                ErrorCode::BadFrame,
                "add_entities reply carries no ids",
            ))
        })?;
        Ok(ids.iter().filter_map(Value::as_u64).map(|id| id as usize).collect())
    }

    /// Removes one entity by id.
    pub fn remove_entity(&mut self, session: u64, entity: usize) -> Result<Value, ClientError> {
        self.call(&Request::RemoveEntity { session, entity })
    }

    /// Runs discovery, returning the full report.
    pub fn discovery(&mut self, session: u64) -> Result<Value, ClientError> {
        self.call(&Request::Discovery { session })
    }

    /// Runs discovery, returning one scrollbar step.
    pub fn scrollbar(&mut self, session: u64, step: usize) -> Result<Value, ClientError> {
        self.call(&Request::Scrollbar { session, step })
    }

    /// Fetches global (`None`) or per-session counters.
    pub fn stats(&mut self, session: Option<u64>) -> Result<Value, ClientError> {
        self.call(&Request::Stats { session })
    }

    /// Fetches the server's engine trace report: phase timings, engine
    /// counters, per-rule hits, and latency histograms.
    pub fn trace(&mut self) -> Result<Value, ClientError> {
        self.call(&Request::Trace)
    }

    /// Drops a session.
    pub fn close_session(&mut self, session: u64) -> Result<Value, ClientError> {
        self.call(&Request::CloseSession { session })
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.call(&Request::Shutdown)
    }
}
