//! A small blocking client for the discovery service — the same framed
//! protocol as the server, one request/response pair at a time over a
//! persistent connection.
//!
//! ```no_run
//! use dime_serve::Client;
//! use serde_json::json;
//!
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! let session = client.create_session(
//!     &json!({"schema": [{"name": "Authors", "tokenizer": {"list": ","}}]}),
//!     "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0",
//! )?;
//! client.add_entities(session, &[json!(["ann, bob"]), json!(["ann, bob, carl"])])?;
//! let report = client.discovery(session)?;
//! println!("{}", report["pivot"]);
//! # Ok::<(), dime_serve::ClientError>(())
//! ```

use crate::protocol::{
    encode_frame, ErrorCode, Frame, FrameReader, ProtocolError, Request, Response, RuleAction,
    DEFAULT_MAX_FRAME_BYTES,
};
use dime_core::Polarity;
use serde_json::Value;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors a [`Client`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// The server's reply violated the wire protocol.
    Protocol(ProtocolError),
    /// The server answered with a structured error response.
    Server {
        /// The machine-readable code.
        code: ErrorCode,
        /// The human-readable description.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Bounded retry-with-backoff, configured by [`Client::with_retry`].
#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    attempts: u32,
    base_ms: u64,
}

/// An IO failure that a reconnect-and-resend can plausibly cure: the
/// connection was refused, reset, or timed out — nothing about the
/// request itself was rejected.
fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// A blocking connection to a discovery server.
pub struct Client {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: TcpStream,
    peer: Option<SocketAddr>,
    retry: Option<RetryPolicy>,
}

impl Client {
    /// Connects to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(BufReader::new(stream), DEFAULT_MAX_FRAME_BYTES),
            writer,
            peer,
            retry: None,
        })
    }

    /// Enables bounded retry: on a transient IO failure (connection
    /// refused/reset, broken pipe, unexpected EOF, `WouldBlock`/timeout)
    /// the client reconnects and resends, and on a server error whose
    /// code is [`ErrorCode::retryable`] it resends, up to `attempts`
    /// extra tries with exponential backoff starting at `base_ms`
    /// milliseconds. Off by default.
    ///
    /// Retrying resends the request verbatim, so a mutation whose first
    /// send died *after* the server applied it can apply twice — enable
    /// this only where that is acceptable (idempotent ops, or a failover
    /// window where the dead primary's unacknowledged work is gone).
    pub fn with_retry(mut self, attempts: u32, base_ms: u64) -> Self {
        self.retry = Some(RetryPolicy { attempts, base_ms });
        self
    }

    /// Drops the current connection and dials the original peer again.
    fn reconnect(&mut self) -> io::Result<()> {
        let peer = self
            .peer
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "peer address unknown"))?;
        let stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true)?;
        self.writer = stream.try_clone()?;
        self.reader = FrameReader::new(BufReader::new(stream), DEFAULT_MAX_FRAME_BYTES);
        Ok(())
    }

    /// Sends one request and reads its response, retrying per
    /// [`Client::with_retry`] when configured.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.request_once(req);
            let Some(policy) = self.retry else { return outcome };
            let retryable = match &outcome {
                Err(ClientError::Io(e)) => transient(e),
                Ok(Response::Err { code, .. }) => code.retryable(),
                _ => false,
            };
            if !retryable || attempt >= policy.attempts {
                return outcome;
            }
            std::thread::sleep(Duration::from_millis(
                policy.base_ms.saturating_mul(1u64 << attempt.min(10)),
            ));
            if matches!(&outcome, Err(ClientError::Io(_))) {
                // The connection is suspect; a fresh dial also covers the
                // refused-connect window of a restarting server. Connect
                // failures are themselves retryable.
                if let Err(e) = self.reconnect() {
                    if !transient(&e) || attempt + 1 >= policy.attempts {
                        return Err(ClientError::Io(e));
                    }
                }
            }
            attempt += 1;
        }
    }

    /// One request/response round trip on the current connection.
    fn request_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(encode_frame(&req.to_value()).as_bytes())?;
        self.writer.flush()?;
        loop {
            match self.reader.read_frame()? {
                Frame::Eof => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-request",
                    )))
                }
                Frame::Oversized => {
                    return Err(ClientError::Protocol(ProtocolError::new(
                        ErrorCode::FrameTooLarge,
                        "response frame exceeded the client-side cap",
                    )))
                }
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let value: Value = serde_json::from_str(&line).map_err(|e| {
                        ClientError::Protocol(ProtocolError::new(
                            ErrorCode::BadFrame,
                            format!("unparsable response: {e}"),
                        ))
                    })?;
                    return Ok(Response::from_value(&value)?);
                }
            }
        }
    }

    /// Sends one request, mapping error responses to [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Value, ClientError> {
        match self.request(req)? {
            Response::Ok(v) => Ok(v),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Health check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Creates a session from a group document and a rules DSL string,
    /// returning its id.
    pub fn create_session(&mut self, group: &Value, rules: &str) -> Result<u64, ClientError> {
        let v =
            self.call(&Request::CreateSession { group: group.clone(), rules: rules.to_string() })?;
        v.get("session").and_then(Value::as_u64).ok_or_else(|| {
            ClientError::Protocol(ProtocolError::new(
                ErrorCode::BadFrame,
                "create_session reply carries no session id",
            ))
        })
    }

    /// Appends entity rows, returning the assigned ids.
    pub fn add_entities(
        &mut self,
        session: u64,
        entities: &[Value],
    ) -> Result<Vec<usize>, ClientError> {
        let v = self.call(&Request::AddEntities { session, entities: entities.to_vec() })?;
        let ids = v.get("ids").and_then(Value::as_array).ok_or_else(|| {
            ClientError::Protocol(ProtocolError::new(
                ErrorCode::BadFrame,
                "add_entities reply carries no ids",
            ))
        })?;
        Ok(ids.iter().filter_map(Value::as_u64).map(|id| id as usize).collect())
    }

    /// Removes one entity by id.
    pub fn remove_entity(&mut self, session: u64, entity: usize) -> Result<Value, ClientError> {
        self.call(&Request::RemoveEntity { session, entity })
    }

    /// Runs discovery, returning the full report.
    pub fn discovery(&mut self, session: u64) -> Result<Value, ClientError> {
        self.call(&Request::Discovery { session })
    }

    /// Runs discovery, returning one scrollbar step.
    pub fn scrollbar(&mut self, session: u64, step: usize) -> Result<Value, ClientError> {
        self.call(&Request::Scrollbar { session, step })
    }

    /// Fetches global (`None`) or per-session counters.
    pub fn stats(&mut self, session: Option<u64>) -> Result<Value, ClientError> {
        self.call(&Request::Stats { session })
    }

    /// Fetches the server's engine trace report: phase timings, engine
    /// counters, per-rule hits, and latency histograms.
    pub fn trace(&mut self) -> Result<Value, ClientError> {
        self.call(&Request::Trace)
    }

    /// Installs a rulespec program as the session's new rule set.
    /// Semantic-analysis warnings ride back in the OK payload.
    pub fn rules_install(&mut self, session: u64, spec: &str) -> Result<Value, ClientError> {
        self.rules_install_opts(session, spec, false)
    }

    /// Installs a rulespec with explicit strictness: under `strict`, any
    /// semantic finding (same/diff conflict, subsumed rule,
    /// unsatisfiable threshold) rejects the install with `rule_rejected`
    /// instead of installing with warnings.
    pub fn rules_install_opts(
        &mut self,
        session: u64,
        spec: &str,
        strict: bool,
    ) -> Result<Value, ClientError> {
        self.call(&Request::Rules {
            session,
            action: RuleAction::Install { spec: spec.to_string(), strict },
        })
    }

    /// Removes one rule by polarity and index.
    pub fn rules_ablate(
        &mut self,
        session: u64,
        polarity: Polarity,
        index: usize,
    ) -> Result<Value, ClientError> {
        self.call(&Request::Rules { session, action: RuleAction::Ablate { polarity, index } })
    }

    /// Lists the session's rules as canonical rulespec text.
    pub fn rules_list(&mut self, session: u64) -> Result<Value, ClientError> {
        self.call(&Request::Rules { session, action: RuleAction::List })
    }

    /// Submits `(entity, belongs)` verdicts and fetches the refined
    /// rulespec; with `apply` the refinement is installed in the same
    /// call.
    pub fn feedback(
        &mut self,
        session: u64,
        labels: &[(usize, bool)],
        apply: bool,
    ) -> Result<Value, ClientError> {
        self.call(&Request::Feedback { session, labels: labels.to_vec(), apply })
    }

    /// Drops a session.
    pub fn close_session(&mut self, session: u64) -> Result<Value, ClientError> {
        self.call(&Request::CloseSession { session })
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.call(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};
    use std::net::TcpListener;

    #[test]
    fn transient_covers_connection_failures_only() {
        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(transient(&io::Error::new(kind, "x")), "{kind:?} must be transient");
        }
        assert!(!transient(&io::Error::new(io::ErrorKind::PermissionDenied, "x")));
        assert!(!transient(&io::Error::new(io::ErrorKind::InvalidData, "x")));
    }

    /// A server that drops its first connection unanswered, then serves a
    /// ping on the second: `with_retry` must reconnect and succeed where
    /// a plain client surfaces the EOF.
    #[test]
    fn retry_reconnects_across_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().expect("accept first");
            drop(first); // simulate a primary dying mid-request
            let (mut second, _) = listener.accept().expect("accept second");
            let mut line = String::new();
            std::io::BufReader::new(second.try_clone().expect("clone"))
                .read_line(&mut line)
                .expect("read request");
            second.write_all(b"{\"ok\":{\"pong\":true}}\n").expect("write response");
        });

        let mut client = Client::connect(addr).expect("connect").with_retry(3, 1);
        client.ping().expect("retrying ping must survive the dropped connection");
        server.join().expect("server thread");
    }

    /// A server that answers the first request with a retryable
    /// `overloaded` error and the second with a pong, on the same
    /// connection: `with_retry` must back off and resend — the
    /// admission queue's backpressure error needs zero client changes.
    #[test]
    fn retry_resends_after_an_overloaded_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("first request");
            conn.write_all(
                b"{\"err\":{\"code\":\"overloaded\",\
                  \"message\":\"verify queue is full; retry after backoff\"}}\n",
            )
            .expect("write overloaded");
            line.clear();
            reader.read_line(&mut line).expect("resent request");
            conn.write_all(b"{\"ok\":{\"pong\":true}}\n").expect("write pong");
        });

        let mut client = Client::connect(addr).expect("connect").with_retry(3, 1);
        client.ping().expect("retrying ping must survive a transient overloaded error");
        server.join().expect("server thread");
    }

    #[test]
    fn without_retry_a_dropped_connection_is_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().expect("accept");
            drop(first);
        });
        let mut client = Client::connect(addr).expect("connect");
        match client.ping() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected an IO error, got {other:?}"),
        }
        server.join().expect("server thread");
    }
}
