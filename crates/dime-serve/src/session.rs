//! The session store: many live groups, each an [`IncrementalDime`]
//! engine behind its own lock, sharded so that lookups under concurrent
//! traffic contend only within a shard.
//!
//! Locking discipline: a worker takes one shard lock just long enough to
//! clone the session's `Arc`, then operates under the session's own lock.
//! Shard locks never nest with session locks held, and no worker ever
//! holds two session locks, so the store is deadlock-free by construction.

use crate::metrics::{SessionMetrics, SessionTotals};
use crate::persist::SessionPersist;
use dime_core::IncrementalDime;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning: a worker that panicked
/// mid-request must not brick the session (or shard) for everyone else.
/// The panicking handler is answered with an `internal` error; the data it
/// may have half-updated is counters, which tolerate slack.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One live group: the incremental engine, its schema's attribute names
/// (cached for entity-row conversion), and its counters.
pub struct Session {
    /// The incremental discovery engine.
    pub engine: IncrementalDime,
    /// Attribute names in schema order.
    pub attr_names: Vec<String>,
    /// Per-session counters.
    pub metrics: SessionMetrics,
    /// The session's durable mirror, when the server runs with a store
    /// (`None` keeps the session memory-only).
    pub persist: Option<SessionPersist>,
    /// Accumulated `(entity id, belongs)` verdicts from `feedback`
    /// requests — the labeled examples the refinement loop mines. Kept in
    /// arrival order; a later verdict for the same entity wins, and ids
    /// are shifted/dropped in step with `remove_entity`.
    pub labels: Vec<(usize, bool)>,
}

impl Session {
    /// Wraps an engine, caching its schema's attribute names.
    pub fn new(engine: IncrementalDime) -> Self {
        let attr_names = engine.group().schema().attrs().iter().map(|a| a.name.clone()).collect();
        Self {
            engine,
            attr_names,
            metrics: SessionMetrics::default(),
            persist: None,
            labels: Vec::new(),
        }
    }

    /// Folds the accumulated labels into one verdict per entity (latest
    /// wins), in entity-id order.
    pub fn effective_labels(&self) -> Vec<(usize, bool)> {
        let mut map: std::collections::BTreeMap<usize, bool> = std::collections::BTreeMap::new();
        for &(entity, belongs) in &self.labels {
            map.insert(entity, belongs);
        }
        map.into_iter().collect()
    }

    /// Keeps the label set consistent with an entity removal: verdicts
    /// for the removed id are dropped, later ids shift down by one —
    /// mirroring the engine's id compaction.
    pub fn shift_labels_for_removal(&mut self, removed: usize) {
        self.labels.retain(|&(entity, _)| entity != removed);
        for label in &mut self.labels {
            if label.0 > removed {
                label.0 -= 1;
            }
        }
    }
}

/// A sharded map from session id to live session.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<u64, Arc<Mutex<Session>>>>>,
    next_id: AtomicU64,
    live: AtomicU64,
    max_sessions: usize,
}

impl SessionStore {
    /// Builds a store with the given shard count (minimum 1) and cap on
    /// concurrently live sessions.
    pub fn new(shards: usize, max_sessions: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            live: AtomicU64::new(0),
            max_sessions,
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<Mutex<Session>>>> {
        // dime-check: allow(panic-in-service) — the modulo keeps the index below shards.len(), which is ≥ 1 by construction
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Claims a live-session slot and a fresh id, or `None` when the
    /// store is at its cap. Splitting allocation from
    /// [`SessionStore::insert_at`] lets the persistence layer create the
    /// session's WAL under its final id before the session goes live.
    pub fn allocate_id(&self) -> Option<u64> {
        // Optimistically claim a slot; back out on overflow. The cap may
        // briefly be observed as exceeded by concurrent inserters, never
        // by more than the number of racing requests.
        if self.live.fetch_add(1, Ordering::SeqCst) as usize >= self.max_sessions {
            self.live.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    /// Publishes a session under an id from [`SessionStore::allocate_id`].
    pub fn insert_at(&self, id: u64, session: Session) {
        lock(self.shard(id)).insert(id, Arc::new(Mutex::new(session)));
    }

    /// Registers a session and returns its fresh id, or `None` when the
    /// store is at its live-session cap.
    pub fn insert(&self, session: Session) -> Option<u64> {
        let id = self.allocate_id()?;
        self.insert_at(id, session);
        Some(id)
    }

    /// Re-registers a recovered session under its durable id, keeping
    /// the never-reuse-ids invariant by raising the id floor past it.
    /// Recovery runs before the server accepts connections, so the
    /// live-session cap is not enforced here: durable sessions always
    /// come back.
    pub fn restore(&self, id: u64, session: Session) {
        self.live.fetch_add(1, Ordering::SeqCst);
        self.next_id.fetch_max(id + 1, Ordering::SeqCst);
        lock(self.shard(id)).insert(id, Arc::new(Mutex::new(session)));
    }

    /// Looks up a session by id.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        lock(self.shard(id)).get(&id).cloned()
    }

    /// Drops a session. Returns whether it existed. In-flight requests
    /// holding the session's `Arc` finish against the detached state.
    pub fn remove(&self, id: u64) -> bool {
        let existed = lock(self.shard(id)).remove(&id).is_some();
        if existed {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
        existed
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::SeqCst) as usize
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sums every session-scoped counter across the live sessions — the
    /// live half of the global stats snapshot (the closed half is banked
    /// in `GlobalMetrics::closed` through the same
    /// [`SessionTotals::absorb`] path).
    pub fn aggregate(&self) -> SessionTotals {
        let totals = SessionTotals::default();
        for shard in &self.shards {
            let sessions: Vec<Arc<Mutex<Session>>> = lock(shard).values().cloned().collect();
            // Session locks are taken after the shard lock is released.
            for s in sessions {
                let guard = lock(&s);
                totals.absorb(&guard.metrics, guard.engine.pairs_verified());
            }
        }
        totals
    }

    /// The live sessions' verified-pair sum — a convenience view of
    /// [`SessionStore::aggregate`].
    pub fn total_pairs_verified(&self) -> u64 {
        self.aggregate().pairs_verified.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Predicate, Rule, Schema, SimilarityFn};
    use dime_text::TokenizerKind;

    fn engine() -> IncrementalDime {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        IncrementalDime::new(
            GroupBuilder::new(schema).build(),
            vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 1.0)])],
            vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])],
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let store = SessionStore::new(4, 8);
        let id = store.insert(Session::new(engine())).unwrap();
        assert!(store.get(id).is_some());
        assert_eq!(store.len(), 1);
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert!(store.get(id).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let store = SessionStore::new(2, 8);
        let a = store.insert(Session::new(engine())).unwrap();
        assert!(store.remove(a));
        let b = store.insert(Session::new(engine())).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn restore_raises_the_id_floor() {
        let store = SessionStore::new(2, 8);
        store.restore(7, Session::new(engine()));
        assert!(store.get(7).is_some());
        assert_eq!(store.len(), 1);
        let next = store.insert(Session::new(engine())).unwrap();
        assert!(next > 7, "fresh ids must never collide with recovered ones");
    }

    #[test]
    fn cap_rejects_and_frees_on_remove() {
        let store = SessionStore::new(2, 2);
        let a = store.insert(Session::new(engine())).unwrap();
        let _b = store.insert(Session::new(engine())).unwrap();
        assert!(store.insert(Session::new(engine())).is_none());
        assert!(store.remove(a));
        assert!(store.insert(Session::new(engine())).is_some());
    }

    #[test]
    fn pairs_verified_sums_across_sessions() {
        let store = SessionStore::new(2, 8);
        for _ in 0..2 {
            let mut s = Session::new(engine());
            s.engine.add_entity(&["ann"]);
            s.engine.add_entity(&["ann"]);
            store.insert(s).unwrap();
        }
        assert_eq!(store.total_pairs_verified(), 2);
    }

    #[test]
    fn session_caches_attr_names() {
        let s = Session::new(engine());
        assert_eq!(s.attr_names, vec!["Authors".to_string()]);
    }

    #[test]
    fn effective_labels_take_the_latest_verdict() {
        let mut s = Session::new(engine());
        s.labels = vec![(2, true), (0, false), (2, false), (1, true)];
        assert_eq!(s.effective_labels(), vec![(0, false), (1, true), (2, false)]);
    }

    #[test]
    fn labels_shift_with_entity_removal() {
        let mut s = Session::new(engine());
        s.labels = vec![(0, true), (1, false), (3, true)];
        s.shift_labels_for_removal(1);
        assert_eq!(s.labels, vec![(0, true), (2, true)]);
    }
}
