//! The discovery server, in two halves since the admission split
//! (DESIGN.md §10):
//!
//! * an **admission/framing layer** that owns the sockets — either the
//!   default non-blocking epoll loop (`poll.rs`,
//!   [`AdmissionMode::Async`]) or the original blocking
//!   thread-per-connection pool ([`AdmissionMode::Threaded`], kept as
//!   the benchmark baseline);
//! * a **CPU-bound verify pool** of scoped worker threads (the
//!   `std::thread::scope` idiom of `dime-core/src/par.rs`) that runs
//!   [`handle_request`] against the sharded [`SessionStore`] and never
//!   touches a socket. In async mode the pool pulls decoded ops off a
//!   *bounded* queue — a full queue is backpressure, answered with the
//!   retryable `overloaded` error — and coalesces consecutive `add` ops
//!   for the same session into one signature/index/verify pass, which is
//!   bit-identical to sequential adds (`IncrementalDime::add_entities`).
//!
//! In both modes each connection's frames are read through the
//! size-capped [`FrameReader`], dispatched, and answered in order, so
//! pipelined requests get pipelined responses. Whitespace-only lines are
//! ignored (a trailing newline from shell clients is not an error).
//!
//! Shutdown is graceful by construction: the `shutdown` request (or
//! [`ServerHandle::shutdown`]) sets a flag and wakes the accept loop with
//! a self-connection. New connections stop being admitted; every held
//! connection keeps being served until the peer closes or two consecutive
//! poll intervals pass with no new frame — fully received requests are
//! in-flight work and always get their response. `run` returns once every
//! queued op has drained.

use crate::metrics::GlobalMetrics;
use crate::persist::{persist_new_session, rebuild_session, store_stats_to_value, SessionPersist};
use crate::protocol::{
    encode_frame, polarity_str, ErrorCode, Frame, FrameReader, Request, Response, RuleAction,
    DEFAULT_MAX_FRAME_BYTES,
};
use crate::session::{lock, Session, SessionStore};
use dime_core::{parse_rules, IncrementalDime, Polarity, Rule, Schema};
use dime_data::{discovery_to_json, entity_row_values, load_group_value};
use dime_rulegen::{
    generate_negative_rules, generate_positive_rules, rules_cover, FunctionLibrary, GreedyConfig,
};
use dime_store::{Store, StoreConfig};
use dime_trace::{span, Recorder, TraceSink};
use serde_json::{json, Value};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the server fronts its sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// One blocking worker thread owns each in-flight connection for its
    /// lifetime. Concurrency is capped at the worker count; kept as the
    /// baseline the async path is benchmarked against.
    Threaded,
    /// The non-blocking admission loop (`poll.rs`): one thread owns all
    /// sockets, decoded ops flow through a bounded queue into the verify
    /// pool, and held-but-idle connections cost no thread.
    #[default]
    Async,
}

impl std::str::FromStr for AdmissionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Self::Threaded),
            "async" => Ok(Self::Async),
            other => Err(format!("unknown admission mode '{other}' (use threaded|async)")),
        }
    }
}

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port.
    pub addr: String,
    /// Worker threads; `0` resolves to the available cores, floored at 4
    /// so a small box still serves several persistent connections.
    pub workers: usize,
    /// Socket-fronting strategy; see [`AdmissionMode`].
    pub admission: AdmissionMode,
    /// Bound of the admission→verify op queue (async mode). A full queue
    /// answers `overloaded` instead of buffering without limit.
    pub queue_capacity: usize,
    /// Most `add` ops the verify pool coalesces into one batched
    /// signature/index/verify pass (async mode).
    pub batch_max: usize,
    /// Hard cap on one request or response frame, in bytes.
    pub max_frame_bytes: usize,
    /// Admission limit on entities per `create_session`/`add_entities`.
    pub max_entities_per_request: usize,
    /// Cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Shard count of the session store.
    pub session_shards: usize,
    /// Read-poll granularity — how often an idle worker re-checks the
    /// shutdown flag; also the unit of the drain grace period.
    pub poll_interval: Duration,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Write timeout per response frame.
    pub write_timeout: Duration,
    /// Durable persistence (`dime-store`): `None` — the default — keeps
    /// every session memory-only; `Some` logs each session to a WAL
    /// under the store's data directory and recovers live sessions on
    /// the next bind.
    pub store: Option<StoreConfig>,
    /// Replication hook: when set (and `store` is set), every committed
    /// WAL record of every session — freshly created or recovered — is
    /// offered to the tap post-durability. `dime-cluster` uses this to
    /// stream a shard's log to its follower.
    pub replication: Option<WalTapHandle>,
}

/// A cloneable, `Debug`-able wrapper around a shared [`dime_store::WalTap`]
/// so a replication hook can ride inside the otherwise plain-data
/// [`ServeConfig`].
#[derive(Clone)]
pub struct WalTapHandle(Arc<dyn dime_store::WalTap>);

impl WalTapHandle {
    /// Wraps a tap for [`ServeConfig::replication`].
    pub fn new(tap: Arc<dyn dime_store::WalTap>) -> Self {
        Self(tap)
    }

    /// A shared reference to the underlying tap.
    pub fn tap(&self) -> Arc<dyn dime_store::WalTap> {
        Arc::clone(&self.0)
    }
}

impl std::fmt::Debug for WalTapHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalTapHandle(..)")
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            admission: AdmissionMode::default(),
            queue_capacity: 1024,
            batch_max: 32,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_entities_per_request: 4096,
            max_sessions: 4096,
            session_shards: 8,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            store: None,
            replication: None,
        }
    }
}

/// Resolves the worker knob: `0` means available cores, floored at 4.
fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1).max(4)
    } else {
        workers
    }
}

/// State shared by the admission layer, the verify pool, and
/// [`ServerHandle`]s.
pub(crate) struct Shared {
    store: SessionStore,
    pub(crate) metrics: GlobalMetrics,
    /// Trace sink shared by every session's engine; the `trace` op
    /// snapshots it. Engine counters and phase spans from all sessions
    /// aggregate here.
    pub(crate) recorder: Arc<Recorder>,
    /// The durable store, when the server persists sessions. Named apart
    /// from `store` (the live session map) on purpose.
    persistence: Option<Arc<Store>>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) config: ServeConfig,
    addr: SocketAddr,
    started: Instant,
}

impl Shared {
    /// Builds the shared state, opening the durable store when one is
    /// configured. Recovery is a separate step ([`recover_persisted`])
    /// so tests can drive it explicitly.
    fn new(config: ServeConfig, addr: SocketAddr) -> io::Result<Self> {
        let persistence = match &config.store {
            Some(sc) => Some(Arc::new(Store::open(sc.clone())?)),
            None => None,
        };
        Ok(Self {
            store: SessionStore::new(config.session_shards, config.max_sessions),
            metrics: GlobalMetrics::default(),
            recorder: Arc::new(Recorder::new()),
            persistence,
            shutdown: AtomicBool::new(false),
            config,
            addr,
            // dime-check: allow(wall-clock-in-core) — uptime epoch for the stats endpoint; never feeds discovery results
            started: Instant::now(),
        })
    }

    /// Sets the shutdown flag and wakes the accept/poll loop with a
    /// self-connection (dropped immediately; the loop re-checks the flag
    /// before admitting a connection).
    pub(crate) fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A cloneable handle for observing and stopping a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (with the real port when `0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates graceful shutdown, equivalent to a `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running discovery server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the configured address. The server does not accept
    /// connections until [`Server::run`] is called.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(config, addr)?);
        recover_persisted(&shared)?;
        Ok(Self { listener, shared })
    }

    /// The bound address (with the real port when `0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until shutdown is initiated, then drains: held connections
    /// finish their buffered requests and every queued op gets its
    /// response before the pool exits.
    pub fn run(self) -> io::Result<()> {
        match self.shared.config.admission {
            AdmissionMode::Threaded => self.run_threaded(),
            AdmissionMode::Async => self.run_async(),
        }
    }

    /// The original thread-per-connection server: a blocking accept loop
    /// feeding a fixed pool over an unbounded channel. Kept verbatim as
    /// the baseline `exp_serve` benchmarks the async path against.
    fn run_threaded(self) -> io::Result<()> {
        let workers = resolve_workers(self.shared.config.workers);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || worker_loop(&rx, &shared));
            }
            for stream in self.listener.incoming() {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    GlobalMetrics::bump(&self.shared.metrics.connections);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // Dropping the sender lets workers drain the queued
            // connections and exit; the scope joins them all.
            drop(tx);
        });
        Ok(())
    }

    /// The async server: the scope's owning thread runs the admission
    /// poll loop (`poll.rs`), the spawned threads form the verify pool.
    /// Ops flow admission → pool over the *bounded* `ops` queue;
    /// completions flow back over the unbounded `done` channel paired
    /// with a [`poll::Waker`]. The admission loop returning is what drops
    /// the op sender, which is what drains and releases the pool.
    fn run_async(self) -> io::Result<()> {
        let workers = resolve_workers(self.shared.config.workers);
        let poller = crate::poll::Poller::new()?;
        let waker = poller.waker(crate::poll::TOKEN_WAKER)?;
        let (ops_tx, ops_rx) =
            mpsc::sync_channel::<OpJob>(self.shared.config.queue_capacity.max(1));
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let ops_rx = Arc::new(Mutex::new(ops_rx));
        let queue_depth = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let ops_rx = Arc::clone(&ops_rx);
                let done_tx = done_tx.clone();
                let waker = waker.clone();
                let shared = Arc::clone(&self.shared);
                let queue_depth = Arc::clone(&queue_depth);
                scope
                    .spawn(move || verify_worker(&ops_rx, &done_tx, &waker, &shared, &queue_depth));
            }
            drop(done_tx);
            crate::poll::admission_loop(
                poller,
                &waker,
                self.listener,
                &self.shared,
                ops_tx,
                &done_rx,
                &queue_depth,
            )
        })
    }
}

/// Replays every durable session from the store into the live session
/// map, under a `recover` trace span. A session whose stored state no
/// longer rebuilds (e.g. a rules-format change) is skipped with a
/// warning — recovery never turns one bad directory into a failed boot —
/// while IO errors on the store itself do fail the bind: serving with
/// silently dropped durable state would be worse than not starting.
fn recover_persisted(shared: &Shared) -> io::Result<()> {
    let Some(persistence) = &shared.persistence else { return Ok(()) };
    let _s = span(shared.recorder.as_ref(), "recover");
    let snapshot_every = persistence.config().snapshot_every;
    for (id, mut rec) in persistence.recover_sessions()? {
        let sink: Arc<dyn TraceSink + Send + Sync> = shared.recorder.clone();
        let mut session = match rebuild_session(&rec.state, sink.clone()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dime-serve: skipping durable session {id}: {e}");
                continue;
            }
        };
        // A recovered session resumes replicating where it left off.
        if let Some(handle) = &shared.config.replication {
            rec.wal.set_tap(id, handle.tap());
        }
        session.persist = Some(SessionPersist::resume(rec, snapshot_every, sink));
        shared.store.restore(id, session);
    }
    Ok(())
}

/// Pulls connections off the shared queue until the accept loop hangs up,
/// serving each to completion. Holding the receiver lock across `recv` is
/// deliberate: exactly one idle worker blocks on the channel while the
/// rest wait on the mutex, and both unblock cleanly on disconnect.
fn worker_loop(rx: &Mutex<mpsc::Receiver<TcpStream>>, shared: &Shared) {
    loop {
        let stream = match lock(rx).recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        handle_connection(stream, shared);
    }
}

/// Serves one connection until EOF, an IO error, idle timeout, or the
/// post-shutdown drain grace expires.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let cfg = &shared.config;
    if stream.set_read_timeout(Some(cfg.poll_interval)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(io::BufReader::new(stream), cfg.max_frame_bytes);
    let mut idle = Duration::ZERO;
    let mut shutdown_polls = 0u32;
    loop {
        match reader.read_frame() {
            Ok(Frame::Eof) => return,
            Ok(Frame::Oversized) => {
                idle = Duration::ZERO;
                shutdown_polls = 0;
                GlobalMetrics::bump(&shared.metrics.oversized_frames);
                GlobalMetrics::bump(&shared.metrics.requests);
                GlobalMetrics::bump(&shared.metrics.errors);
                let resp = Response::err(
                    ErrorCode::FrameTooLarge,
                    format!("frame exceeds {} bytes", cfg.max_frame_bytes),
                );
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Ok(Frame::Line(line)) => {
                idle = Duration::ZERO;
                shutdown_polls = 0;
                if line.trim().is_empty() {
                    continue;
                }
                let (resp, is_shutdown) = process_line(&line, shared);
                GlobalMetrics::bump(&shared.metrics.requests);
                if !resp.is_ok() {
                    GlobalMetrics::bump(&shared.metrics.errors);
                }
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
                if is_shutdown {
                    shared.initiate_shutdown();
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain grace: two consecutive empty polls mean no
                    // buffered request remains on this connection.
                    shutdown_polls += 1;
                    if shutdown_polls >= 2 {
                        return;
                    }
                } else {
                    idle += cfg.poll_interval;
                    if idle >= cfg.idle_timeout {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

fn write_response(writer: &mut TcpStream, resp: &Response) -> io::Result<()> {
    writer.write_all(encode_frame(&resp.to_value()).as_bytes())?;
    writer.flush()
}

/// Parses one frame into a [`Request`]. An undecodable frame is the
/// inline error response the admission layer answers without ever
/// involving the verify pool.
pub(crate) fn decode_line(line: &str) -> Result<Request, Response> {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return Err(Response::err(ErrorCode::BadFrame, format!("invalid JSON: {e}"))),
    };
    Request::from_value(&value).map_err(|e| Response::err(e.code, e.message))
}

/// Parses and dispatches one frame (threaded mode). The handler runs
/// under `catch_unwind` so a panicking request becomes an `internal`
/// error response instead of a dead worker (session locks recover from
/// the poisoning; see `session::lock`).
fn process_line(line: &str, shared: &Shared) -> (Response, bool) {
    let req = match decode_line(line) {
        Ok(r) => r,
        Err(resp) => return (resp, false),
    };
    let is_shutdown = matches!(req, Request::Shutdown);
    let resp = catch_unwind(AssertUnwindSafe(|| handle_request(&req, shared)))
        .unwrap_or_else(|_| Response::err(ErrorCode::Internal, "request handler panicked"));
    (resp, is_shutdown)
}

/// One decoded request in flight from the admission layer to the verify
/// pool: which connection asked, and where in that connection's response
/// order the answer belongs.
pub(crate) struct OpJob {
    /// Admission-layer connection token.
    pub conn: u64,
    /// Position in the connection's response order.
    pub seq: u64,
    /// The decoded request.
    pub req: Request,
}

/// One finished response on its way back to the admission layer.
pub(crate) struct Completion {
    /// Connection token the response belongs to.
    pub conn: u64,
    /// Position in that connection's response order.
    pub seq: u64,
    /// The encoded response frame, ready to write.
    pub frame: Vec<u8>,
    /// Whether this op asked the server to shut down.
    pub shutdown: bool,
}

/// Encodes and ships one finished response, with the same global
/// request/error accounting the threaded path does per frame.
fn complete(
    done: &mpsc::Sender<Completion>,
    shared: &Shared,
    conn: u64,
    seq: u64,
    resp: Response,
    shutdown: bool,
) {
    GlobalMetrics::bump(&shared.metrics.requests);
    if !resp.is_ok() {
        GlobalMetrics::bump(&shared.metrics.errors);
    }
    let frame = encode_frame(&resp.to_value()).into_bytes();
    let _ = done.send(Completion { conn, seq, frame, shutdown });
}

/// One verify-pool thread: pulls ops off the bounded queue until the
/// admission loop hangs up, coalescing runs of consecutive `add` ops for
/// the same session into one batched pass. Holding the receiver lock
/// across `recv` is deliberate (the `worker_loop` idiom): exactly one
/// idle worker blocks on the channel, and the coalescing `try_recv` run
/// happens under the same guard, so a run of same-session adds is not
/// split across workers racing on the queue.
fn verify_worker(
    rx: &Mutex<mpsc::Receiver<OpJob>>,
    done: &mpsc::Sender<Completion>,
    waker: &crate::poll::Waker,
    shared: &Shared,
    queue_depth: &AtomicU64,
) {
    let batch_max = shared.config.batch_max.max(1);
    // An op popped while probing for a coalescible run but belonging to a
    // different session/op carries over as the next batch's head.
    let mut carry: Option<OpJob> = None;
    loop {
        let mut batch: Vec<OpJob> = Vec::with_capacity(batch_max);
        // A carried head must be processed WITHOUT waiting on the
        // receiver lock: an idle sibling holds that lock blocked in
        // `recv`, and with the queue quiet it would never release it —
        // the carried op would strand forever. Coalescing onto a carried
        // head is therefore opportunistic (`try_lock`); a fresh head
        // keeps the guard it took for `recv` and coalesces under it.
        let (head, guard) = match carry.take() {
            Some(job) => (job, rx.try_lock().ok()),
            None => {
                let g = lock(rx);
                match g.recv() {
                    Ok(job) => {
                        // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
                        queue_depth.fetch_sub(1, Ordering::Relaxed);
                        (job, Some(g))
                    }
                    Err(_) => return,
                }
            }
        };
        let mut batch_session: Option<u64> = None;
        if let Request::AddEntities { session, .. } = &head.req {
            batch_session = Some(*session);
        }
        batch.push(head);
        if let (Some(sid), Some(g)) = (batch_session, guard.as_ref()) {
            while batch.len() < batch_max {
                match g.try_recv() {
                    Ok(job) => {
                        // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
                        queue_depth.fetch_sub(1, Ordering::Relaxed);
                        let same = matches!(
                            &job.req,
                            Request::AddEntities { session, .. } if *session == sid
                        );
                        if same {
                            batch.push(job);
                        } else {
                            carry = Some(job);
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        drop(guard);
        match (batch_session, batch.len()) {
            (Some(sid), n) if n >= 2 => {
                GlobalMetrics::add(&shared.metrics.coalesced_adds, n as u64);
                if shared.recorder.enabled() {
                    shared.recorder.latency("verify_batch_size", n as u64);
                }
                let responses =
                    catch_unwind(AssertUnwindSafe(|| handle_add_batch(sid, &batch, shared)))
                        .unwrap_or_else(|_| {
                            batch
                                .iter()
                                .map(|_| {
                                    Response::err(ErrorCode::Internal, "request handler panicked")
                                })
                                .collect()
                        });
                for (job, resp) in batch.iter().zip(responses) {
                    complete(done, shared, job.conn, job.seq, resp, false);
                }
            }
            _ => {
                if let Some(job) = batch.pop() {
                    let is_shutdown = matches!(job.req, Request::Shutdown);
                    let resp = catch_unwind(AssertUnwindSafe(|| handle_request(&job.req, shared)))
                        .unwrap_or_else(|_| {
                            Response::err(ErrorCode::Internal, "request handler panicked")
                        });
                    complete(done, shared, job.conn, job.seq, resp, is_shutdown);
                }
            }
        }
        waker.wake();
    }
}

/// Dispatches a coalesced run of `add` ops against one session: every
/// request is admitted or rejected on its own — exactly as the
/// sequential handler would have, in queue order — but all admitted rows
/// go through **one** `IncrementalDime::add_entities` pass and one WAL
/// batch append. Per-request responses are byte-identical to sequential
/// dispatch: ids are split back out of the batch, and each `entities`
/// count reflects only the rows applied *through* that request.
fn handle_add_batch(session: u64, jobs: &[OpJob], shared: &Shared) -> Vec<Response> {
    let cfg = &shared.config;
    let Some(sess) = shared.store.get(session) else {
        return jobs.iter().map(|_| no_such_session(session)).collect();
    };
    let mut guard = lock(&sess);
    let sess = &mut *guard;
    let names: Vec<&str> = sess.attr_names.iter().map(String::as_str).collect();
    let base_len = sess.engine.len();

    // Per-request admission and validation, mirroring the sequential
    // handler's order exactly: the entity limit is checked before the
    // request counts, a bad row rejects its whole request (and only its
    // request), and no row of a rejected request lands.
    let mut plans: Vec<Result<Vec<Vec<String>>, Response>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let Request::AddEntities { entities, .. } = &job.req else {
            // The coalescing loop only batches add ops; answer anything
            // else with a structured error instead of trusting that.
            plans.push(Err(Response::err(ErrorCode::Internal, "non-add op in coalesced batch")));
            continue;
        };
        if entities.len() > cfg.max_entities_per_request {
            plans.push(Err(Response::err(
                ErrorCode::TooManyEntities,
                format!(
                    "request carries {} entities; the limit is {}",
                    entities.len(),
                    cfg.max_entities_per_request
                ),
            )));
            continue;
        }
        sess.metrics.requests += 1;
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(entities.len());
        let mut rejected = None;
        for (i, row) in entities.iter().enumerate() {
            match entity_row_values(row, &names) {
                Ok(values) => rows.push(values),
                Err(e) => {
                    rejected = Some(Response::err(
                        ErrorCode::BadRequest,
                        format!("entity {i}: {}", e.message),
                    ));
                    break;
                }
            }
        }
        plans.push(match rejected {
            Some(resp) => Err(resp),
            None => Ok(rows),
        });
    }

    let all_rows: Vec<Vec<String>> = plans
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .flat_map(|rows| rows.iter().cloned())
        .collect();
    let ids = sess.engine.add_entities(&all_rows);
    sess.metrics.entities_added += ids.len() as u64;
    if let Some(p) = sess.persist.as_mut() {
        p.log_add_batch(all_rows);
    }

    let mut out = Vec::with_capacity(jobs.len());
    let mut offset = 0usize;
    let mut applied = base_len;
    for plan in plans {
        match plan {
            Err(resp) => out.push(resp),
            Ok(rows) => {
                let req_ids = ids.get(offset..offset + rows.len()).unwrap_or(&[]);
                offset += rows.len();
                applied += rows.len();
                out.push(Response::Ok(json!({"ids": req_ids, "entities": applied})));
            }
        }
    }
    out
}

fn no_such_session(id: u64) -> Response {
    Response::err(ErrorCode::NoSuchSession, format!("session {id} does not exist"))
}

/// Pure request dispatch — everything below the framing layer, shared by
/// the unit tests (which exercise it without sockets) and the workers.
fn handle_request(req: &Request, shared: &Shared) -> Response {
    let cfg = &shared.config;
    match req {
        Request::Ping => Response::Ok(json!({"pong": true})),
        Request::Shutdown => Response::Ok(json!({"shutting_down": true})),
        Request::CreateSession { group, rules } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::err(
                    ErrorCode::ShuttingDown,
                    "server is draining; no new sessions",
                );
            }
            let loaded = match load_group_value(group) {
                Ok(g) => g,
                Err(e) => return Response::err(ErrorCode::BadRequest, e.message),
            };
            if loaded.len() > cfg.max_entities_per_request {
                return Response::err(
                    ErrorCode::TooManyEntities,
                    format!(
                        "group carries {} entities; the limit is {}",
                        loaded.len(),
                        cfg.max_entities_per_request
                    ),
                );
            }
            let parsed = match parse_rules(rules, loaded.schema()) {
                Ok(r) => r,
                Err(e) => return Response::err(ErrorCode::BadRequest, format!("bad rules: {e}")),
            };
            let (pos, neg): (Vec<Rule>, Vec<Rule>) =
                parsed.into_iter().partition(|r| r.polarity == Polarity::Positive);
            if pos.is_empty() || neg.is_empty() {
                return Response::err(
                    ErrorCode::BadRequest,
                    "rules must include at least one positive and one negative rule",
                );
            }
            // The id is claimed before the engine is built so the
            // session's WAL can be created under its final id.
            let Some(id) = shared.store.allocate_id() else {
                return Response::err(
                    ErrorCode::TooManySessions,
                    format!("live-session limit of {} reached", cfg.max_sessions),
                );
            };
            let entities = loaded.len();
            let sink: Arc<dyn TraceSink + Send + Sync> = shared.recorder.clone();
            let engine = IncrementalDime::new(loaded, pos, neg).with_sink(sink.clone());
            let mut session = Session::new(engine);
            // The initial group's rows count toward the session's
            // entities_added, so closing the session banks them like any
            // other per-session counter.
            session.metrics.entities_added = entities as u64;
            if let Some(persistence) = &shared.persistence {
                let tap = shared.config.replication.as_ref().map(WalTapHandle::tap);
                session.persist = persist_new_session(
                    persistence,
                    id,
                    group,
                    rules,
                    &session.attr_names,
                    sink,
                    tap,
                );
            }
            shared.store.insert_at(id, session);
            GlobalMetrics::bump(&shared.metrics.sessions_created);
            Response::Ok(json!({"session": id, "entities": entities}))
        }
        Request::AddEntities { session, entities } => {
            if entities.len() > cfg.max_entities_per_request {
                return Response::err(
                    ErrorCode::TooManyEntities,
                    format!(
                        "request carries {} entities; the limit is {}",
                        entities.len(),
                        cfg.max_entities_per_request
                    ),
                );
            }
            let Some(sess) = shared.store.get(*session) else {
                return no_such_session(*session);
            };
            let mut guard = lock(&sess);
            let sess = &mut *guard;
            sess.metrics.requests += 1;
            // Validate every row before mutating anything: a bad row in
            // the middle must not half-apply the batch.
            let names: Vec<&str> = sess.attr_names.iter().map(String::as_str).collect();
            let mut rows: Vec<Vec<String>> = Vec::with_capacity(entities.len());
            for (i, row) in entities.iter().enumerate() {
                match entity_row_values(row, &names) {
                    Ok(values) => rows.push(values),
                    Err(e) => {
                        return Response::err(
                            ErrorCode::BadRequest,
                            format!("entity {i}: {}", e.message),
                        )
                    }
                }
            }
            let ids: Vec<usize> = rows
                .iter()
                .map(|values| {
                    let refs: Vec<&str> = values.iter().map(String::as_str).collect();
                    sess.engine.add_entity(&refs)
                })
                .collect();
            sess.metrics.entities_added += ids.len() as u64;
            if let Some(p) = sess.persist.as_mut() {
                for values in rows {
                    p.log_add(values);
                }
            }
            Response::Ok(json!({"ids": ids, "entities": sess.engine.len()}))
        }
        Request::RemoveEntity { session, entity } => {
            let Some(sess) = shared.store.get(*session) else {
                return no_such_session(*session);
            };
            let mut sess = lock(&sess);
            sess.metrics.requests += 1;
            if !sess.engine.remove_entity(*entity) {
                return Response::err(
                    ErrorCode::NoSuchEntity,
                    format!("entity {entity} out of range (session holds {})", sess.engine.len()),
                );
            }
            sess.metrics.entities_removed += 1;
            sess.shift_labels_for_removal(*entity);
            if let Some(p) = sess.persist.as_mut() {
                p.log_remove(*entity);
            }
            Response::Ok(json!({"removed": entity, "entities": sess.engine.len()}))
        }
        Request::Discovery { session } => with_discovery(shared, *session, |sess, d| {
            Response::Ok(discovery_to_json(sess.engine.group(), d))
        }),
        Request::Scrollbar { session, step } => {
            let step = *step;
            with_discovery(shared, *session, |_, d| {
                let Some(s) = d.steps.get(step) else {
                    return Response::err(
                        ErrorCode::BadRequest,
                        format!("step {step} out of range ({} steps)", d.steps.len()),
                    );
                };
                Response::Ok(json!({
                    "step": step,
                    "rules_applied": s.rules_applied,
                    "flagged": s.flagged.iter().copied().collect::<Vec<_>>(),
                    "pivot": d.pivot,
                }))
            })
        }
        Request::Stats { session: Some(id) } => {
            let Some(sess) = shared.store.get(*id) else {
                return no_such_session(*id);
            };
            let mut sess = lock(&sess);
            sess.metrics.requests += 1;
            Response::Ok(sess.metrics.to_value(sess.engine.len(), sess.engine.pairs_verified()))
        }
        Request::Stats { session: None } => {
            let mut v =
                shared.metrics.to_value(shared.store.len() as u64, &shared.store.aggregate());
            if let Some(obj) = v.as_object_mut() {
                obj.insert(
                    "uptime_micros".into(),
                    json!(u64::try_from(shared.started.elapsed().as_micros()).unwrap_or(u64::MAX)),
                );
                if let Some(persistence) = &shared.persistence {
                    obj.insert(
                        "store".into(),
                        store_stats_to_value(&persistence.stats().snapshot()),
                    );
                }
            }
            Response::Ok(v)
        }
        Request::Trace => {
            Response::Ok(crate::metrics::trace_report_to_value(&shared.recorder.snapshot()))
        }
        Request::Rules { session, action } => handle_rules(shared, *session, action),
        Request::Feedback { session, labels, apply } => {
            handle_feedback(shared, *session, labels, *apply)
        }
        Request::CloseSession { session } => {
            let sess = shared.store.get(*session);
            if shared.store.remove(*session) {
                // Bank every per-session counter of the detached session
                // so the global totals survive the close. Exactly one
                // closer wins the `remove` race, so the counters are
                // banked exactly once.
                if let Some(sess) = sess {
                    let mut guard = lock(&sess);
                    shared.metrics.closed.absorb(&guard.metrics, guard.engine.pairs_verified());
                    // A durable `close` record first, then the directory
                    // goes: even if the removal is lost to a crash, the
                    // record keeps the session from resurrecting.
                    if let Some(p) = guard.persist.take() {
                        p.close();
                    }
                }
                if let Some(persistence) = &shared.persistence {
                    if let Err(e) = persistence.remove_session(*session) {
                        persistence.stats().bump_wal_failures();
                        eprintln!("dime-serve: could not remove session {session} data: {e}");
                    }
                }
                GlobalMetrics::bump(&shared.metrics.sessions_closed);
                Response::Ok(json!({"closed": session}))
            } else {
                no_such_session(*session)
            }
        }
    }
}

/// Cap on the entity pairs the install validation exercises per rule —
/// enough for the degeneracy verdict, bounded so installs stay cheap on
/// large sessions.
const MAX_EXERCISE_PAIRS: usize = 256;

/// Renders a rule set in the simple `parse_rules` DSL, one rule per line
/// — the format the session's `open` WAL record carries, so a logged
/// rule-set replacement replays through the same parse path.
fn rules_to_simple_dsl(positive: &[Rule], negative: &[Rule], schema: &Schema) -> String {
    positive.iter().chain(negative).map(|r| r.to_dsl(schema)).collect::<Vec<_>>().join("\n")
}

/// Swaps the engine onto a new rule set and mirrors the change into the
/// session's WAL.
fn apply_rules(sess: &mut Session, positive: Vec<Rule>, negative: Vec<Rule>) {
    let text = rules_to_simple_dsl(&positive, &negative, sess.engine.group().schema());
    sess.engine.set_rules(positive, negative);
    if let Some(p) = sess.persist.as_mut() {
        p.log_set_rules(text);
    }
}

/// Validates and installs a complete replacement rule set: both
/// polarities stay populated (the invariant recovery's `rebuild_engine`
/// replays under), and every rule is exercised against a sample of the
/// session's own pairs before anything changes — a rule that fires on
/// every sampled pair is rejected as non-discriminating.
fn install_rules(
    sess: &mut Session,
    positive: Vec<Rule>,
    negative: Vec<Rule>,
    warnings: &[dime_rulespec::SemFinding],
) -> Response {
    if positive.is_empty() || negative.is_empty() {
        return Response::err(
            ErrorCode::RuleRejected,
            "rule set must keep at least one positive and one negative rule",
        );
    }
    let all: Vec<Rule> = positive.iter().chain(&negative).cloned().collect();
    let report = match dime_rulespec::validate_rules(sess.engine.group(), &all, MAX_EXERCISE_PAIRS)
    {
        Ok(r) => r,
        Err(msg) => return Response::err(ErrorCode::RuleRejected, msg),
    };
    let (np, nn) = (positive.len(), negative.len());
    apply_rules(sess, positive, negative);
    Response::Ok(json!({
        "installed": {"positive": np, "negative": nn},
        "exercised_pairs": report.pairs,
        "fired": report.fired,
        "warnings": warnings
            .iter()
            .map(|w| json!({"kind": w.kind.tag(), "message": w.message}))
            .collect::<Vec<_>>(),
    }))
}

/// Renders semck findings as one `rule_rejected` message. Each finding
/// already names the offending rules in canonical rulespec syntax.
fn semck_rejection(findings: &[dime_rulespec::SemFinding]) -> Response {
    let lines: Vec<String> =
        findings.iter().map(|f| format!("[{}] {}", f.kind.tag(), f.message)).collect();
    Response::err(
        ErrorCode::RuleRejected,
        format!(
            "strict install rejected: {} semantic finding{}: {}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            lines.join("; "),
        ),
    )
}

/// The `rules` op: install a rulespec, ablate one rule, or list the
/// current set as canonical rulespec text.
fn handle_rules(shared: &Shared, session: u64, action: &RuleAction) -> Response {
    let Some(sess) = shared.store.get(session) else {
        return no_such_session(session);
    };
    let mut guard = lock(&sess);
    let sess = &mut *guard;
    sess.metrics.requests += 1;
    match action {
        RuleAction::Install { spec, strict } => {
            let compiled =
                match dime_rulespec::compile_str("<install>", spec, sess.engine.group().schema()) {
                    Ok(c) => c,
                    Err(d) => return Response::err(ErrorCode::RuleRejected, d.to_string()),
                };
            let findings = dime_rulespec::semck_spec(&compiled, sess.engine.group().schema());
            if *strict && !findings.is_empty() {
                return semck_rejection(&findings);
            }
            install_rules(sess, compiled.positive, compiled.negative, &findings)
        }
        RuleAction::Ablate { polarity, index } => {
            let mut positive = sess.engine.positive_rules().to_vec();
            let mut negative = sess.engine.negative_rules().to_vec();
            let list = match polarity {
                Polarity::Positive => &mut positive,
                Polarity::Negative => &mut negative,
            };
            if *index >= list.len() {
                return Response::err(
                    ErrorCode::BadRequest,
                    format!(
                        "rule index {index} out of range ({} {} rules)",
                        list.len(),
                        polarity_str(*polarity)
                    ),
                );
            }
            if list.len() == 1 {
                return Response::err(
                    ErrorCode::RuleRejected,
                    format!(
                        "cannot ablate the last {} rule; the engine needs at least one of \
                         each polarity",
                        polarity_str(*polarity)
                    ),
                );
            }
            let removed = list.remove(*index);
            let removed_text = removed.to_dsl(sess.engine.group().schema());
            // No re-validation: every surviving rule already passed the
            // exercise when it was installed, and removing a rule cannot
            // make another one degenerate.
            apply_rules(sess, positive, negative);
            Response::Ok(json!({
                "ablated": {
                    "polarity": polarity_str(*polarity),
                    "index": index,
                    "rule": removed_text,
                },
                "positive": sess.engine.positive_rules().len(),
                "negative": sess.engine.negative_rules().len(),
            }))
        }
        RuleAction::List => {
            let schema = sess.engine.group().schema();
            match dime_rulespec::render_rules(
                sess.engine.positive_rules(),
                sess.engine.negative_rules(),
                schema,
            ) {
                Ok(spec) => Response::Ok(json!({
                    "spec": spec,
                    "positive": sess.engine.positive_rules().len(),
                    "negative": sess.engine.negative_rules().len(),
                })),
                Err(e) => Response::err(
                    ErrorCode::Internal,
                    format!("rules are not renderable as rulespec: {e}"),
                ),
            }
        }
    }
}

/// The `feedback` op — the incremental refinement loop. Labels
/// accumulate on the session; each call derives example pairs from the
/// effective verdicts (member×member pairs are wanted together,
/// member×outlier pairs wanted apart), finds the pairs the current rules
/// miss, runs greedy rule generation on exactly that residual, and
/// answers with the refined rulespec — installed too when `apply` is set
/// and generation produced something new.
fn handle_feedback(
    shared: &Shared,
    session: u64,
    labels: &[(usize, bool)],
    apply: bool,
) -> Response {
    let Some(sess) = shared.store.get(session) else {
        return no_such_session(session);
    };
    let mut guard = lock(&sess);
    let sess = &mut *guard;
    sess.metrics.requests += 1;
    let len = sess.engine.len();
    for &(entity, _) in labels {
        if entity >= len {
            return Response::err(
                ErrorCode::NoSuchEntity,
                format!("label references entity {entity}, but the session holds {len}"),
            );
        }
    }
    sess.labels.extend_from_slice(labels);
    let effective = sess.effective_labels();
    let members: Vec<usize> = effective.iter().filter(|(_, b)| *b).map(|(e, _)| *e).collect();
    let outliers: Vec<usize> = effective.iter().filter(|(_, b)| !*b).map(|(e, _)| *e).collect();
    let mut wanted: Vec<(usize, usize)> = Vec::new();
    for (i, &a) in members.iter().enumerate() {
        for &b in members.get(i + 1..).unwrap_or(&[]) {
            wanted.push((a, b));
        }
    }
    let mut unwanted: Vec<(usize, usize)> = Vec::new();
    for &a in &members {
        for &b in &outliers {
            unwanted.push((a.min(b), a.max(b)));
        }
    }

    let group = sess.engine.group();
    let positive = sess.engine.positive_rules().to_vec();
    let negative = sess.engine.negative_rules().to_vec();
    let residual_pos: Vec<(usize, usize)> =
        wanted.iter().copied().filter(|&p| !rules_cover(group, &positive, p)).collect();
    let residual_neg: Vec<(usize, usize)> =
        unwanted.iter().copied().filter(|&p| !rules_cover(group, &negative, p)).collect();
    let covered_before =
        (wanted.len() - residual_pos.len()) + (unwanted.len() - residual_neg.len());

    let lib = FunctionLibrary::default_for(group);
    let cfg = GreedyConfig::default();
    let mut new_pos = if residual_pos.is_empty() {
        Vec::new()
    } else {
        generate_positive_rules(group, &residual_pos, &unwanted, &lib, &cfg)
    };
    let mut new_neg = if residual_neg.is_empty() {
        Vec::new()
    } else {
        generate_negative_rules(group, &wanted, &residual_neg, &lib, &cfg)
    };
    new_pos.retain(|r| !positive.contains(r));
    new_neg.retain(|r| !negative.contains(r));

    let refined_pos: Vec<Rule> = positive.iter().cloned().chain(new_pos.iter().cloned()).collect();
    let refined_neg: Vec<Rule> = negative.iter().cloned().chain(new_neg.iter().cloned()).collect();
    let covered_after = wanted.iter().filter(|&&p| rules_cover(group, &refined_pos, p)).count()
        + unwanted.iter().filter(|&&p| rules_cover(group, &refined_neg, p)).count();
    let spec = match dime_rulespec::render_rules(&refined_pos, &refined_neg, group.schema()) {
        Ok(s) => s,
        Err(e) => {
            return Response::err(
                ErrorCode::Internal,
                format!("refined rules are not renderable as rulespec: {e}"),
            )
        }
    };
    let applied = apply && (!new_pos.is_empty() || !new_neg.is_empty());
    if applied {
        apply_rules(sess, refined_pos, refined_neg);
    }
    Response::Ok(json!({
        "labels": effective.len(),
        "pairs": {"positive": wanted.len(), "negative": unwanted.len()},
        "residual": {"positive": residual_pos.len(), "negative": residual_neg.len()},
        "generated": {"positive": new_pos.len(), "negative": new_neg.len()},
        "covered_before": covered_before,
        "covered_after": covered_after,
        "spec": spec,
        "applied": applied,
    }))
}

/// Common body of `discovery` and `scrollbar`: locate the session, guard
/// the empty group, time the discovery run, record latencies, then let
/// `render` shape the payload.
fn with_discovery(
    shared: &Shared,
    session: u64,
    render: impl FnOnce(&Session, &dime_core::Discovery) -> Response,
) -> Response {
    let Some(sess) = shared.store.get(session) else {
        return no_such_session(session);
    };
    let mut guard = lock(&sess);
    let sess = &mut *guard;
    sess.metrics.requests += 1;
    if sess.engine.is_empty() {
        return Response::err(ErrorCode::EmptyGroup, "discovery needs at least one entity");
    }
    // dime-check: allow(wall-clock-in-core) — latency measurement feeding metrics only, not results
    let start = Instant::now();
    let d = sess.engine.discovery();
    let elapsed = start.elapsed();
    sess.metrics.discoveries += 1;
    sess.metrics.record_flag_latency(elapsed);
    render(sess, &d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Shared {
        let config =
            ServeConfig { max_entities_per_request: 8, max_sessions: 4, ..ServeConfig::default() };
        Shared::new(config, "127.0.0.1:1".parse().unwrap()).unwrap()
    }

    /// A `Shared` persisting to `dir`, with recovery already run — the
    /// socketless equivalent of `Server::bind` on a data directory.
    fn shared_on_dir(dir: &std::path::Path) -> Shared {
        let config = ServeConfig {
            max_entities_per_request: 8,
            max_sessions: 4,
            store: Some(StoreConfig {
                data_dir: dir.to_path_buf(),
                fsync: dime_store::FsyncPolicy::Never,
                snapshot_every: 3,
            }),
            ..ServeConfig::default()
        };
        let s = Shared::new(config, "127.0.0.1:1".parse().unwrap()).unwrap();
        recover_persisted(&s).unwrap();
        s
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dime-serve-{tag}-{}-{n}", std::process::id()))
    }

    fn group_doc() -> Value {
        json!({
            "schema": [
                {"name": "Title", "tokenizer": "words"},
                {"name": "Authors", "tokenizer": {"list": ","}}
            ],
            "entities": []
        })
    }

    const RULES: &str = "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0";

    fn create(shared: &Shared) -> u64 {
        let resp = handle_request(
            &Request::CreateSession { group: group_doc(), rules: RULES.into() },
            shared,
        );
        match resp {
            Response::Ok(v) => v["session"].as_u64().unwrap(),
            Response::Err { code, message } => panic!("create failed: {code} {message}"),
        }
    }

    fn expect_err(resp: Response, code: ErrorCode) {
        match resp {
            Response::Err { code: c, .. } => assert_eq!(c, code),
            Response::Ok(v) => panic!("expected {code}, got ok: {v}"),
        }
    }

    #[test]
    fn ping_pongs() {
        let s = shared();
        assert_eq!(handle_request(&Request::Ping, &s), Response::Ok(json!({"pong": true})));
    }

    #[test]
    fn full_session_lifecycle_matches_batch_discovery() {
        let s = shared();
        let id = create(&s);
        let rows = vec![
            json!(["data cleaning", "ann, bob"]),
            json!({"Title": "data quality", "Authors": "ann, bob, carl"}),
            json!(["organic synthesis", "dora"]),
        ];
        let resp = handle_request(&Request::AddEntities { session: id, entities: rows }, &s);
        let Response::Ok(v) = resp else { panic!("add failed: {resp:?}") };
        assert_eq!(v["ids"], json!([0, 1, 2]));

        let Response::Ok(report) = handle_request(&Request::Discovery { session: id }, &s) else {
            panic!("discovery failed")
        };
        assert_eq!(report["partitions"].as_array().unwrap().len(), 2);
        let flagged = report["mis_categorized"].as_array().unwrap();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0]["Authors"], "dora");

        // The scrollbar step mirrors the report's first step.
        let Response::Ok(step) = handle_request(&Request::Scrollbar { session: id, step: 0 }, &s)
        else {
            panic!("scrollbar failed")
        };
        assert_eq!(step["flagged"], report["steps"][0]["flagged"]);

        expect_err(
            handle_request(&Request::Scrollbar { session: id, step: 99 }, &s),
            ErrorCode::BadRequest,
        );

        let Response::Ok(stats) = handle_request(&Request::Stats { session: Some(id) }, &s) else {
            panic!("stats failed")
        };
        assert_eq!(stats["entities"], 3);
        // discovery + both scrollbar calls ran the engine (the
        // out-of-range step fails only after flagging).
        assert_eq!(stats["discoveries"], 3);
        assert!(stats["pairs_verified"].as_u64().unwrap() > 0);

        let Response::Ok(closed) = handle_request(&Request::CloseSession { session: id }, &s)
        else {
            panic!("close failed")
        };
        assert_eq!(closed["closed"], id);
        expect_err(
            handle_request(&Request::Discovery { session: id }, &s),
            ErrorCode::NoSuchSession,
        );

        // The closed session's verified pairs stay in the global total.
        let Response::Ok(global) = handle_request(&Request::Stats { session: None }, &s) else {
            panic!("global stats failed")
        };
        assert!(global["pairs_verified"].as_u64().unwrap() > 0);
        assert_eq!(global["sessions"]["live"], 0);
    }

    #[test]
    fn remove_entity_roundtrip() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![json!(["a", "ann, bob"]), json!(["b", "zed, yan"])],
            },
            &s,
        );
        let Response::Ok(v) = handle_request(&Request::RemoveEntity { session: id, entity: 0 }, &s)
        else {
            panic!("remove failed")
        };
        assert_eq!(v["entities"], 1);
        expect_err(
            handle_request(&Request::RemoveEntity { session: id, entity: 5 }, &s),
            ErrorCode::NoSuchEntity,
        );
    }

    #[test]
    fn empty_group_discovery_is_a_structured_error() {
        let s = shared();
        let id = create(&s);
        expect_err(handle_request(&Request::Discovery { session: id }, &s), ErrorCode::EmptyGroup);
    }

    #[test]
    fn bad_rows_do_not_half_apply() {
        let s = shared();
        let id = create(&s);
        expect_err(
            handle_request(
                &Request::AddEntities {
                    session: id,
                    entities: vec![json!(["good", "ann"]), json!(["arity mismatch"])],
                },
                &s,
            ),
            ErrorCode::BadRequest,
        );
        let Response::Ok(stats) = handle_request(&Request::Stats { session: Some(id) }, &s) else {
            panic!("stats failed")
        };
        assert_eq!(stats["entities"], 0, "no row of a rejected batch may land");
    }

    #[test]
    fn admission_limits_are_enforced() {
        let s = shared();
        let id = create(&s);
        let rows: Vec<Value> = (0..9).map(|i| json!([format!("t{i}"), "ann"])).collect();
        expect_err(
            handle_request(&Request::AddEntities { session: id, entities: rows }, &s),
            ErrorCode::TooManyEntities,
        );
        for _ in 0..3 {
            create(&s);
        }
        expect_err(
            handle_request(&Request::CreateSession { group: group_doc(), rules: RULES.into() }, &s),
            ErrorCode::TooManySessions,
        );
    }

    #[test]
    fn create_session_rejects_bad_input() {
        let s = shared();
        expect_err(
            handle_request(
                &Request::CreateSession { group: json!({"entities": []}), rules: RULES.into() },
                &s,
            ),
            ErrorCode::BadRequest,
        );
        expect_err(
            handle_request(
                &Request::CreateSession { group: group_doc(), rules: "gibberish".into() },
                &s,
            ),
            ErrorCode::BadRequest,
        );
        expect_err(
            handle_request(
                &Request::CreateSession {
                    group: group_doc(),
                    rules: "positive: overlap(Authors) >= 2".into(),
                },
                &s,
            ),
            ErrorCode::BadRequest,
        );
    }

    #[test]
    fn shutdown_refuses_new_sessions_but_serves_existing() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities { session: id, entities: vec![json!(["t", "ann"])] },
            &s,
        );
        s.shutdown.store(true, Ordering::SeqCst);
        expect_err(
            handle_request(&Request::CreateSession { group: group_doc(), rules: RULES.into() }, &s),
            ErrorCode::ShuttingDown,
        );
        assert!(handle_request(&Request::Discovery { session: id }, &s).is_ok());
    }

    #[test]
    fn process_line_survives_garbage() {
        let s = shared();
        let (resp, _) = process_line("{not json", &s);
        expect_err(resp, ErrorCode::BadFrame);
        let (resp, _) = process_line("{\"op\": \"sorcery\"}", &s);
        expect_err(resp, ErrorCode::UnknownOp);
        let (resp, is_shutdown) = process_line("{\"op\": \"shutdown\"}", &s);
        assert!(resp.is_ok());
        assert!(is_shutdown);
    }

    #[test]
    fn global_stats_snapshot() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities { session: id, entities: vec![json!(["t", "ann"])] },
            &s,
        );
        GlobalMetrics::bump(&s.metrics.requests);
        let Response::Ok(v) = handle_request(&Request::Stats { session: None }, &s) else {
            panic!("stats failed")
        };
        assert_eq!(v["sessions"]["live"], 1);
        assert_eq!(v["entities_added"], 1);
        assert!(v["uptime_micros"].as_u64().is_some());
    }

    /// Closing a session must not erase ANY of its counters from the
    /// global stats — every per-session counter is banked through the
    /// same path (the original code banked only `pairs_verified`, so
    /// `entities_added` and friends silently dropped on close).
    #[test]
    fn session_close_banks_all_counters() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![json!(["a", "ann, bob"]), json!(["b", "ann, bob"])],
            },
            &s,
        );
        handle_request(&Request::Discovery { session: id }, &s);
        handle_request(&Request::RemoveEntity { session: id, entity: 1 }, &s);
        handle_request(&Request::CloseSession { session: id }, &s);

        let Response::Ok(v) = handle_request(&Request::Stats { session: None }, &s) else {
            panic!("global stats failed")
        };
        assert_eq!(v["sessions"]["live"], 0);
        assert_eq!(v["entities_added"], 2, "entities_added must survive session close");
        assert_eq!(v["entities_removed"], 1, "entities_removed must survive session close");
        assert_eq!(v["discoveries"], 1, "discoveries must survive session close");
        assert!(v["pairs_verified"].as_u64().unwrap() > 0);
        assert_eq!(v["flag_latency"]["count"], 1, "latency histogram must survive close");
        assert_eq!(v["session_requests"], 3);
    }

    /// Rows carried by the `create_session` group document land in the
    /// session's own counters, so they bank on close like rows added
    /// through `add_entities`.
    #[test]
    fn initial_group_rows_count_and_bank() {
        let s = shared();
        let doc = json!({
            "schema": [
                {"name": "Title", "tokenizer": "words"},
                {"name": "Authors", "tokenizer": {"list": ","}}
            ],
            "entities": [["t1", "ann, bob"], ["t2", "ann, bob"]]
        });
        let Response::Ok(v) =
            handle_request(&Request::CreateSession { group: doc, rules: RULES.into() }, &s)
        else {
            panic!("create failed")
        };
        let id = v["session"].as_u64().unwrap();
        assert_eq!(v["entities"], 2);

        let Response::Ok(live) = handle_request(&Request::Stats { session: None }, &s) else {
            panic!("stats failed")
        };
        assert_eq!(live["entities_added"], 2);

        handle_request(&Request::CloseSession { session: id }, &s);
        let Response::Ok(after) = handle_request(&Request::Stats { session: None }, &s) else {
            panic!("stats failed")
        };
        assert_eq!(after["entities_added"], 2, "initial rows must survive session close");
    }

    /// The `trace` op surfaces the engine's phase spans and counters:
    /// every session's engine feeds the shared recorder.
    #[test]
    fn trace_op_reports_engine_phases() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![json!(["a", "ann, bob"]), json!(["b", "ann, bob"])],
            },
            &s,
        );
        handle_request(&Request::Discovery { session: id }, &s);

        let Response::Ok(v) = handle_request(&Request::Trace, &s) else { panic!("trace failed") };
        let phases: Vec<&str> =
            v["phases"].as_array().unwrap().iter().map(|p| p["name"].as_str().unwrap()).collect();
        assert!(phases.contains(&"flag"), "discovery must record a flag phase: {phases:?}");
        assert!(phases.contains(&"incremental_add"), "adds must record spans: {phases:?}");
        assert!(v["counters"]["pairs_verified"].as_u64().unwrap() > 0);
        assert!(v["counters"]["entities_added"].as_u64().unwrap() >= 2);
    }

    fn add_job(conn: u64, seq: u64, session: u64, entities: Vec<Value>) -> OpJob {
        OpJob { conn, seq, req: Request::AddEntities { session, entities } }
    }

    /// The coalesced dispatch contract: a batch of `add` requests run
    /// through `handle_add_batch` produces responses byte-identical to
    /// dispatching the same requests one at a time — including a
    /// mid-batch row rejection and a mid-batch over-limit rejection,
    /// which must fail alone without disturbing their neighbors' ids or
    /// `entities` counts — and the engines agree bit-identically after.
    #[test]
    fn batched_add_dispatch_matches_sequential() {
        let batched = shared();
        let sequential = shared();
        let id = create(&batched);
        assert_eq!(create(&sequential), id);
        let requests: Vec<Vec<Value>> = vec![
            vec![json!(["t1", "ann, bob"]), json!(["t2", "ann, bob, carl"])],
            vec![json!(["arity mismatch"])],
            (0..9).map(|i| json!([format!("x{i}"), "ann"])).collect(),
            vec![json!(["t3", "dora"]), json!(["t4", "ann, bob"])],
        ];
        let jobs: Vec<OpJob> = requests
            .iter()
            .enumerate()
            .map(|(i, entities)| add_job(7, i as u64, id, entities.clone()))
            .collect();

        let batch_resps = handle_add_batch(id, &jobs, &batched);
        let seq_resps: Vec<Response> = requests
            .iter()
            .map(|entities| {
                handle_request(
                    &Request::AddEntities { session: id, entities: entities.clone() },
                    &sequential,
                )
            })
            .collect();
        assert_eq!(batch_resps, seq_resps);

        let Response::Ok(last) = &batch_resps[3] else { panic!("final add must succeed") };
        assert_eq!(last["ids"], json!([2, 3]), "ids must split across the batch densely");
        assert_eq!(last["entities"], 4);
        assert_eq!(
            comparable(discovery_of(&batched, id)),
            comparable(discovery_of(&sequential, id))
        );
    }

    #[test]
    fn batched_add_to_missing_session_rejects_every_op() {
        let s = shared();
        let jobs =
            vec![add_job(1, 0, 99, vec![json!(["t", "ann"])]), add_job(1, 1, 99, Vec::new())];
        let resps = handle_add_batch(99, &jobs, &s);
        assert_eq!(resps.len(), 2);
        for resp in resps {
            expect_err(resp, ErrorCode::NoSuchSession);
        }
    }

    /// Witnesses are sampled, so equality across a restart is asserted on
    /// everything else.
    fn comparable(mut report: Value) -> Value {
        report.as_object_mut().expect("report object").remove("witnesses");
        report
    }

    fn discovery_of(s: &Shared, id: u64) -> Value {
        match handle_request(&Request::Discovery { session: id }, s) {
            Response::Ok(v) => v,
            resp => panic!("discovery failed: {resp:?}"),
        }
    }

    /// The heart of the persistence layer: kill the server mid-session
    /// (drop without close), rebuild on the same data directory, and the
    /// recovered session's `discovery()` must be bit-identical — through
    /// initial-document rows, batched adds, a removal, a checkpoint
    /// (snapshot_every = 3 forces one), and a second crash after further
    /// writes.
    #[test]
    fn restart_recovers_sessions_bit_identical() {
        let dir = temp_dir("restart");
        let (id, before) = {
            let s = shared_on_dir(&dir);
            let doc = json!({
                "schema": [
                    {"name": "Title", "tokenizer": "words"},
                    {"name": "Authors", "tokenizer": {"list": ","}}
                ],
                "entities": [["seed", "ann, bob"]]
            });
            let Response::Ok(v) =
                handle_request(&Request::CreateSession { group: doc, rules: RULES.into() }, &s)
            else {
                panic!("create failed")
            };
            let id = v["session"].as_u64().unwrap();
            handle_request(
                &Request::AddEntities {
                    session: id,
                    entities: vec![
                        json!(["data cleaning", "ann, bob"]),
                        json!(["data quality", "ann, bob, carl"]),
                        json!(["organic synthesis", "dora"]),
                        json!(["doomed", "zed"]),
                    ],
                },
                &s,
            );
            handle_request(&Request::RemoveEntity { session: id, entity: 4 }, &s);
            // Seven appends against snapshot_every = 3: the crash state
            // is a snapshot plus a WAL tail, not a bare log.
            let Response::Ok(stats) = handle_request(&Request::Stats { session: None }, &s) else {
                panic!("stats failed")
            };
            assert!(stats["store"]["snapshots_written"].as_u64().unwrap() >= 1);
            assert!(stats["store"]["compactions"].as_u64().unwrap() >= 1);
            (id, comparable(discovery_of(&s, id)))
            // `s` drops here without closing the session: the crash.
        };

        let s = shared_on_dir(&dir);
        assert_eq!(comparable(discovery_of(&s, id)), before, "recovery must be bit-identical");
        let Response::Ok(stats) = handle_request(&Request::Stats { session: None }, &s) else {
            panic!("stats failed")
        };
        assert_eq!(stats["store"]["sessions_recovered"], 1);

        // The recovered session keeps persisting: crash again after more
        // writes and the third incarnation still agrees.
        handle_request(
            &Request::AddEntities { session: id, entities: vec![json!(["late", "ann, bob"])] },
            &s,
        );
        let before = comparable(discovery_of(&s, id));
        drop(s);
        let s = shared_on_dir(&dir);
        assert_eq!(comparable(discovery_of(&s, id)), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn rules_op(shared: &Shared, session: u64, action: RuleAction) -> Response {
        handle_request(&Request::Rules { session, action }, shared)
    }

    /// Installing a rulespec over the wire must change what discovery
    /// finds, exactly as if the session had been created with the new
    /// rules: the install path compiles through `dime-rulespec` into the
    /// same `Rule` values `parse_rules` would have produced.
    #[test]
    fn installed_rulespec_changes_discovery() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![
                    json!(["t1", "ann, bob"]),
                    json!(["t2", "ann, bob, carl"]),
                    json!(["t3", "dora"]),
                ],
            },
            &s,
        );
        // The seed rules flag t3 (no author overlap).
        let before = discovery_of(&s, id);
        assert_eq!(before["mis_categorized"].as_array().unwrap().len(), 1);

        // Install a stricter positive rule: overlap ≥ 3 links nothing,
        // so every entity becomes its own partition and the pivot's
        // complement is flagged.
        let spec = "same(X, Y) :- overlap(Authors) >= 3.\n\
                    diff(X, Y) :- overlap(Authors) <= 0.";
        let resp = rules_op(&s, id, RuleAction::Install { spec: spec.into(), strict: false });
        let Response::Ok(v) = resp else { panic!("install failed: {resp:?}") };
        assert_eq!(v["installed"], json!({"positive": 1, "negative": 1}));
        assert!(v["exercised_pairs"].as_u64().unwrap() > 0);

        let after = discovery_of(&s, id);
        assert_ne!(
            comparable(before),
            comparable(after.clone()),
            "a stricter rule set must change the report"
        );

        // And the installed set equals a session born with those rules.
        let fresh = shared();
        let fresh_id = match handle_request(
            &Request::CreateSession {
                group: group_doc(),
                rules: "positive: overlap(Authors) >= 3\nnegative: overlap(Authors) <= 0".into(),
            },
            &fresh,
        ) {
            Response::Ok(v) => v["session"].as_u64().unwrap(),
            resp => panic!("create failed: {resp:?}"),
        };
        handle_request(
            &Request::AddEntities {
                session: fresh_id,
                entities: vec![
                    json!(["t1", "ann, bob"]),
                    json!(["t2", "ann, bob, carl"]),
                    json!(["t3", "dora"]),
                ],
            },
            &fresh,
        );
        assert_eq!(comparable(after), comparable(discovery_of(&fresh, fresh_id)));
    }

    #[test]
    fn install_rejections_are_structured_and_atomic() {
        let s = shared();
        let id = create(&s);
        for i in 0..4 {
            handle_request(
                &Request::AddEntities {
                    session: id,
                    entities: vec![json!([format!("t{i}"), format!("a{i}, b{i}")])],
                },
                &s,
            );
        }
        let Response::Ok(listed) = rules_op(&s, id, RuleAction::List) else {
            panic!("list failed")
        };
        let spec_before = listed["spec"].as_str().unwrap().to_string();

        // A syntax error carries the file:line:col diagnostic.
        let resp =
            rules_op(&s, id, RuleAction::Install { spec: "same(X, Y) :-".into(), strict: false });
        let Response::Err { code, message } = resp else { panic!("must reject") };
        assert_eq!(code, ErrorCode::RuleRejected);
        assert!(message.contains("<install>:1:"), "diagnostic position: {message}");

        // An unknown attribute names the schema.
        let resp = rules_op(
            &s,
            id,
            RuleAction::Install {
                spec: "same(X, Y) :- overlap(Publisher) >= 1.".into(),
                strict: false,
            },
        );
        let Response::Err { code, message } = resp else { panic!("must reject") };
        assert_eq!(code, ErrorCode::RuleRejected);
        assert!(message.contains("Authors"), "must list known attributes: {message}");

        // A polarity-less set is rejected.
        let resp = rules_op(
            &s,
            id,
            RuleAction::Install {
                spec: "same(X, Y) :- overlap(Authors) >= 2.".into(),
                strict: false,
            },
        );
        expect_err(resp, ErrorCode::RuleRejected);

        // A degenerate always-firing rule fails Solon validation.
        let resp = rules_op(
            &s,
            id,
            RuleAction::Install {
                spec: "same(X, Y) :- overlap(Authors) >= 0.\n\
                       diff(X, Y) :- overlap(Authors) <= 0."
                    .into(),
                strict: false,
            },
        );
        let Response::Err { code, message } = resp else { panic!("must reject") };
        assert_eq!(code, ErrorCode::RuleRejected);
        assert!(message.contains("fired on all"), "{message}");

        // None of the rejections changed the live set.
        let Response::Ok(listed) = rules_op(&s, id, RuleAction::List) else {
            panic!("list failed")
        };
        assert_eq!(
            listed["spec"].as_str().unwrap(),
            spec_before,
            "rejected installs must be no-ops"
        );
    }

    /// The semck acceptance pair: a `same`/`diff` rule whose `overlap`
    /// ranges overlap (overlap ∈ [1, 2] fires both). Discriminating on
    /// the sampled pairs, so only the semantic pass can catch it.
    const CONFLICTING_SPEC: &str = "same(X, Y) :- overlap(Authors) >= 1.\n\
                                    diff(X, Y) :- overlap(Authors) <= 2.";

    #[test]
    fn strict_install_rejects_conflicting_rules_naming_both() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![
                    json!(["t0", "ann, bob, carl"]),
                    json!(["t1", "ann, bob, carl, dora"]),
                    json!(["t2", "emma"]),
                    json!(["t3", "frank"]),
                ],
            },
            &s,
        );
        let Response::Ok(listed) = rules_op(&s, id, RuleAction::List) else {
            panic!("list failed")
        };
        let spec_before = listed["spec"].as_str().unwrap().to_string();

        let resp =
            rules_op(&s, id, RuleAction::Install { spec: CONFLICTING_SPEC.into(), strict: true });
        let Response::Err { code, message } = resp else { panic!("strict must reject") };
        assert_eq!(code, ErrorCode::RuleRejected);
        assert!(message.contains("conflict"), "{message}");
        assert!(message.contains("overlap(Authors) >= 1"), "must name the same rule: {message}");
        assert!(message.contains("overlap(Authors) <= 2"), "must name the diff rule: {message}");

        // The rejection is atomic: the live set is untouched.
        let Response::Ok(listed) = rules_op(&s, id, RuleAction::List) else {
            panic!("list failed")
        };
        assert_eq!(listed["spec"].as_str().unwrap(), spec_before);
    }

    #[test]
    fn non_strict_install_carries_semck_warnings() {
        let s = shared();
        let id = create(&s);
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![
                    json!(["t0", "ann, bob, carl"]),
                    json!(["t1", "ann, bob, carl, dora"]),
                    json!(["t2", "emma"]),
                    json!(["t3", "frank"]),
                ],
            },
            &s,
        );
        let resp =
            rules_op(&s, id, RuleAction::Install { spec: CONFLICTING_SPEC.into(), strict: false });
        let Response::Ok(v) = resp else { panic!("non-strict must install: {resp:?}") };
        assert_eq!(v["installed"], json!({"positive": 1, "negative": 1}));
        let warnings = v["warnings"].as_array().unwrap();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert_eq!(warnings[0]["kind"], "conflict");
        assert!(warnings[0]["message"].as_str().unwrap().contains("overlap(Authors)"));

        // A clean spec installs with an empty warnings array.
        let clean = "same(X, Y) :- overlap(Authors) >= 2.\n\
                     diff(X, Y) :- overlap(Authors) <= 0.";
        let Response::Ok(v) =
            rules_op(&s, id, RuleAction::Install { spec: clean.into(), strict: false })
        else {
            panic!("clean install failed")
        };
        assert_eq!(v["warnings"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn ablate_respects_the_polarity_floor() {
        let s = shared();
        let id = create(&s);
        let resp = rules_op(&s, id, RuleAction::Ablate { polarity: Polarity::Positive, index: 0 });
        let Response::Err { code, message } = resp else {
            panic!("ablating the last positive rule must fail")
        };
        assert_eq!(code, ErrorCode::RuleRejected);
        assert!(message.contains("last positive"), "{message}");
        expect_err(
            rules_op(&s, id, RuleAction::Ablate { polarity: Polarity::Negative, index: 7 }),
            ErrorCode::BadRequest,
        );

        // Install a two-positive set, then ablation works and shrinks it.
        // The pair (t0, t1) shares authors so neither rule fires on every
        // sampled pair.
        let spec = "same(X, Y) :- overlap(Authors) >= 2.\n\
                    same(X, Y) :- jaccard(Title) >= 0.9.\n\
                    diff(X, Y) :- overlap(Authors) <= 0.";
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![
                    json!(["t0", "ann, bob"]),
                    json!(["t1", "ann, bob"]),
                    json!(["t2", "carl"]),
                    json!(["t3", "dora"]),
                ],
            },
            &s,
        );
        let Response::Ok(_) =
            rules_op(&s, id, RuleAction::Install { spec: spec.into(), strict: false })
        else {
            panic!("install failed")
        };
        let Response::Ok(v) =
            rules_op(&s, id, RuleAction::Ablate { polarity: Polarity::Positive, index: 1 })
        else {
            panic!("ablate failed")
        };
        assert_eq!(v["positive"], 1);
        assert_eq!(v["negative"], 1);
        assert!(v["ablated"]["rule"].as_str().unwrap().contains("jaccard"));
    }

    /// The refinement loop: label the members and the outlier of a group
    /// whose seed rules miss everything, and the refined spec must cover
    /// the residual pairs — improving coverage — and change discovery
    /// when applied.
    #[test]
    fn feedback_refines_and_applies() {
        let s = shared();
        // Seed rules that link nothing and separate nothing useful: the
        // real structure is in Authors overlap, which these ignore.
        let Response::Ok(v) = handle_request(
            &Request::CreateSession {
                group: group_doc(),
                rules: "positive: jaccard(Title) >= 0.99\nnegative: edit_sim(Title) <= 0.01".into(),
            },
            &s,
        ) else {
            panic!("create failed")
        };
        let id = v["session"].as_u64().unwrap();
        handle_request(
            &Request::AddEntities {
                session: id,
                entities: vec![
                    json!(["data cleaning", "ann, bob"]),
                    json!(["data quality", "ann, bob, carl"]),
                    json!(["data lakes", "ann, carl"]),
                    json!(["organic synthesis", "dora"]),
                ],
            },
            &s,
        );
        let resp = handle_request(
            &Request::Feedback {
                session: id,
                labels: vec![(0, true), (1, true), (2, true), (3, false)],
                apply: false,
            },
            &s,
        );
        let Response::Ok(v) = resp else { panic!("feedback failed: {resp:?}") };
        assert_eq!(v["labels"], 4);
        assert_eq!(v["pairs"], json!({"positive": 3, "negative": 3}));
        assert!(v["residual"]["positive"].as_u64().unwrap() > 0, "seed rules cover nothing");
        let before = v["covered_before"].as_u64().unwrap();
        let after = v["covered_after"].as_u64().unwrap();
        assert!(after > before, "refinement must improve coverage: {before} -> {after}");
        assert_eq!(v["applied"], false, "apply was not requested");
        let spec = v["spec"].as_str().unwrap();
        assert!(spec.contains(":-"), "refined spec must be rulespec text: {spec}");

        // Labels accumulate: the second call sees the same effective set
        // and now applies the refinement.
        let resp =
            handle_request(&Request::Feedback { session: id, labels: vec![], apply: true }, &s);
        let Response::Ok(v) = resp else { panic!("feedback failed: {resp:?}") };
        assert_eq!(v["labels"], 4, "labels must persist across feedback calls");
        assert_eq!(v["applied"], true);

        // The applied rules now flag exactly the labeled outlier.
        let report = discovery_of(&s, id);
        let flagged = report["mis_categorized"].as_array().unwrap();
        assert_eq!(flagged.len(), 1, "refined rules must isolate the outlier: {report}");
        assert_eq!(flagged[0]["Authors"], "dora");

        // And the listed spec reflects the applied refinement.
        let Response::Ok(listed) = rules_op(&s, id, RuleAction::List) else {
            panic!("list failed")
        };
        assert!(listed["positive"].as_u64().unwrap() >= 2, "applied set keeps seed + generated");
    }

    #[test]
    fn feedback_rejects_unknown_entities() {
        let s = shared();
        let id = create(&s);
        expect_err(
            handle_request(
                &Request::Feedback { session: id, labels: vec![(9, true)], apply: false },
                &s,
            ),
            ErrorCode::NoSuchEntity,
        );
    }

    /// An installed rule set must survive a crash: the WAL's `set_rules`
    /// record replays through the same parse path as the `open` record,
    /// and the recovered engine answers discovery bit-identically.
    #[test]
    fn installed_rules_survive_restart() {
        let dir = temp_dir("rules");
        let (id, before) = {
            let s = shared_on_dir(&dir);
            let id = create(&s);
            handle_request(
                &Request::AddEntities {
                    session: id,
                    entities: vec![
                        json!(["t1", "ann, bob"]),
                        json!(["t2", "ann, bob, carl"]),
                        json!(["t3", "dora"]),
                        json!(["t4", "emma"]),
                    ],
                },
                &s,
            );
            let spec = "same(X, Y) :- overlap(Authors) >= 1.\n\
                        diff(X, Y) :- overlap(Authors) <= 0.";
            let Response::Ok(_) =
                rules_op(&s, id, RuleAction::Install { spec: spec.into(), strict: false })
            else {
                panic!("install failed")
            };
            (id, comparable(discovery_of(&s, id)))
        };
        let s = shared_on_dir(&dir);
        assert_eq!(
            comparable(discovery_of(&s, id)),
            before,
            "recovered session must replay the installed rules"
        );
        // The recovered session keeps the installed set, not the seed.
        let Response::Ok(listed) = rules_op(&s, id, RuleAction::List) else {
            panic!("list failed")
        };
        assert!(
            listed["spec"].as_str().unwrap().contains(">= 1"),
            "recovered rules must be the installed ones: {}",
            listed["spec"]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A closed session writes a durable close record and loses its data
    /// directory; neither a restart nor an id collision may bring it
    /// back.
    #[test]
    fn closed_sessions_stay_closed_across_restart() {
        let dir = temp_dir("closed");
        let (a, b) = {
            let s = shared_on_dir(&dir);
            let a = create(&s);
            let b = create(&s);
            handle_request(
                &Request::AddEntities { session: b, entities: vec![json!(["t", "ann"])] },
                &s,
            );
            let Response::Ok(_) = handle_request(&Request::CloseSession { session: a }, &s) else {
                panic!("close failed")
            };
            (a, b)
        };

        let s = shared_on_dir(&dir);
        expect_err(
            handle_request(&Request::Discovery { session: a }, &s),
            ErrorCode::NoSuchSession,
        );
        assert!(handle_request(&Request::Discovery { session: b }, &s).is_ok());
        let fresh = create(&s);
        assert!(fresh > b, "recovered ids must stay reserved: {fresh} vs {b}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
