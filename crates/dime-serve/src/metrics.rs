//! Observability counters: lock-free global counters shared by every
//! worker, plus per-session counters mutated under the session lock.
//!
//! Both surface through the `stats` operation — `{"op": "stats"}` returns
//! the global view, `{"op": "stats", "session": id}` one session's view.

use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A latency aggregate: count, total, and max, in microseconds.
///
/// Uses relaxed atomics throughout — the three cells are independently
/// monotone, so a reader may observe a total slightly ahead of the count
/// (or vice versa), which is fine for monitoring counters.
#[derive(Debug, Default)]
pub struct LatencyStat {
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyStat {
    /// Records one measured duration.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Snapshot as `{count, total_micros, max_micros, mean_micros}`.
    pub fn to_value(&self) -> Value {
        let count = self.count.load(Ordering::Relaxed);
        let total = self.total_micros.load(Ordering::Relaxed);
        json!({
            "count": count,
            "total_micros": total,
            "max_micros": self.max_micros.load(Ordering::Relaxed),
            "mean_micros": if count == 0 { 0 } else { total / count },
        })
    }
}

/// Server-wide counters, updated lock-free by every worker.
#[derive(Debug, Default)]
pub struct GlobalMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests handled (including ones answered with an error).
    pub requests: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Frames dropped for exceeding the size cap.
    pub oversized_frames: AtomicU64,
    /// Sessions created over the server's lifetime.
    pub sessions_created: AtomicU64,
    /// Sessions closed over the server's lifetime.
    pub sessions_closed: AtomicU64,
    /// Entities added across all sessions.
    pub entities_added: AtomicU64,
    /// Entities removed across all sessions.
    pub entities_removed: AtomicU64,
    /// Discovery/scrollbar runs across all sessions.
    pub discoveries: AtomicU64,
    /// Candidate pairs verified by sessions that have since closed; the
    /// global `pairs_verified` figure is this plus the live-session sum,
    /// so closing a session never loses its work from the total.
    pub pairs_verified_closed: AtomicU64,
    /// Latency of discovery/scrollbar runs (the flagging pipeline).
    pub flag_latency: LatencyStat,
}

impl GlobalMetrics {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of every counter, with the live-session gauge and the
    /// live sessions' verified-pair sum supplied by the caller (both live
    /// in the session store, not here). The reported `pairs_verified`
    /// also folds in pairs banked from closed sessions.
    pub fn to_value(&self, sessions_live: u64, pairs_verified_live: u64) -> Value {
        let pairs_verified =
            self.pairs_verified_closed.load(Ordering::Relaxed).saturating_add(pairs_verified_live);
        json!({
            "connections": self.connections.load(Ordering::Relaxed),
            "requests": self.requests.load(Ordering::Relaxed),
            "errors": self.errors.load(Ordering::Relaxed),
            "oversized_frames": self.oversized_frames.load(Ordering::Relaxed),
            "sessions": {
                "created": self.sessions_created.load(Ordering::Relaxed),
                "closed": self.sessions_closed.load(Ordering::Relaxed),
                "live": sessions_live,
            },
            "entities_added": self.entities_added.load(Ordering::Relaxed),
            "entities_removed": self.entities_removed.load(Ordering::Relaxed),
            "discoveries": self.discoveries.load(Ordering::Relaxed),
            "pairs_verified": pairs_verified,
            "flag_latency": self.flag_latency.to_value(),
        })
    }
}

/// Per-session counters; mutated only under the owning session's lock, so
/// plain integers suffice.
#[derive(Debug, Default, Clone)]
pub struct SessionMetrics {
    /// Requests routed to this session.
    pub requests: u64,
    /// Entities added to this session.
    pub entities_added: u64,
    /// Entities removed from this session.
    pub entities_removed: u64,
    /// Discovery/scrollbar runs on this session.
    pub discoveries: u64,
    /// Count of discovery latency samples.
    pub flag_count: u64,
    /// Sum of discovery latencies, in microseconds.
    pub flag_total_micros: u64,
    /// Max discovery latency, in microseconds.
    pub flag_max_micros: u64,
}

impl SessionMetrics {
    /// Records one discovery latency sample.
    pub fn record_flag_latency(&mut self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.flag_count += 1;
        self.flag_total_micros += micros;
        self.flag_max_micros = self.flag_max_micros.max(micros);
    }

    /// Snapshot, with the live-entity count and the engine's verified-pair
    /// counter supplied by the caller.
    pub fn to_value(&self, entities: usize, pairs_verified: u64) -> Value {
        json!({
            "requests": self.requests,
            "entities": entities,
            "entities_added": self.entities_added,
            "entities_removed": self.entities_removed,
            "discoveries": self.discoveries,
            "pairs_verified": pairs_verified,
            "flag_latency": {
                "count": self.flag_count,
                "total_micros": self.flag_total_micros,
                "max_micros": self.flag_max_micros,
                "mean_micros": if self.flag_count == 0 { 0 } else { self.flag_total_micros / self.flag_count },
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stat_aggregates() {
        let s = LatencyStat::default();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        let v = s.to_value();
        assert_eq!(v["count"], 2);
        assert_eq!(v["total_micros"], 40);
        assert_eq!(v["max_micros"], 30);
        assert_eq!(v["mean_micros"], 20);
    }

    #[test]
    fn session_metrics_snapshot() {
        let mut m = SessionMetrics::default();
        m.requests = 3;
        m.record_flag_latency(Duration::from_micros(8));
        let v = m.to_value(5, 17);
        assert_eq!(v["requests"], 3);
        assert_eq!(v["entities"], 5);
        assert_eq!(v["pairs_verified"], 17);
        assert_eq!(v["flag_latency"]["count"], 1);
    }

    #[test]
    fn global_metrics_snapshot_includes_gauges() {
        let g = GlobalMetrics::default();
        GlobalMetrics::bump(&g.requests);
        GlobalMetrics::add(&g.entities_added, 4);
        let v = g.to_value(2, 9);
        assert_eq!(v["requests"], 1);
        assert_eq!(v["entities_added"], 4);
        assert_eq!(v["sessions"]["live"], 2);
        assert_eq!(v["pairs_verified"], 9);
    }

    #[test]
    fn closed_session_pairs_fold_into_global_total() {
        let g = GlobalMetrics::default();
        GlobalMetrics::add(&g.pairs_verified_closed, 5);
        assert_eq!(g.to_value(1, 9)["pairs_verified"], 14);
    }
}
