//! Observability counters: lock-free global counters shared by every
//! worker, histogram-backed latency aggregates, and per-session counters
//! mutated under the session lock.
//!
//! Everything surfaces through the `stats` operation — `{"op": "stats"}`
//! returns the global view, `{"op": "stats", "session": id}` one
//! session's view — and the engine-level trace through `{"op": "trace"}`.
//!
//! Session-scoped counters follow one uniform banking rule: the global
//! figure is the [`SessionTotals`] banked from *closed* sessions plus the
//! same totals summed over the *live* sessions, both folded through
//! [`SessionTotals::absorb`]. Closing a session therefore never loses any
//! of its counters — verified pairs, added entities, latency samples, all
//! of them move from the live sum into the bank atomically with the close.

use dime_trace::{Histogram, HistogramSnapshot, TraceReport};
use serde_json::{json, Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A latency aggregate backed by a [`Histogram`] of microseconds:
/// lock-free recording, mergeable, with count/total/max plus p50/p95/p99
/// quantile snapshots (quantiles are bucket upper bounds, so they never
/// under-report; see `dime_trace::Histogram`).
#[derive(Debug, Default, Clone)]
pub struct LatencyStat {
    hist: Histogram,
}

impl LatencyStat {
    /// Records one measured duration.
    pub fn record(&self, elapsed: Duration) {
        self.hist.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Folds another aggregate into this one (bucket-wise addition; every
    /// derived figure is monotone under the merge).
    pub fn merge(&self, other: &LatencyStat) {
        self.hist.merge(&other.hist);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Snapshot as `{count, total_micros, max_micros, mean_micros,
    /// p50_micros, p95_micros, p99_micros, buckets}` — `buckets` carries
    /// the raw sparse histogram cells so a cluster router can re-merge
    /// aggregates from many shards without losing quantile fidelity.
    pub fn to_value(&self) -> Value {
        let s = self.hist.snapshot();
        json!({
            "count": s.count,
            "total_micros": s.total,
            "max_micros": s.max,
            "mean_micros": s.mean(),
            "p50_micros": s.p50,
            "p95_micros": s.p95,
            "p99_micros": s.p99,
            "buckets": sparse_buckets(&s),
        })
    }
}

/// The raw histogram cells as sparse `[index, count]` pairs — compact on
/// the wire (latency histograms populate a handful of the 64 buckets) and
/// loss-free, so cross-shard merges are exactly [`Histogram::merge`].
fn sparse_buckets(s: &HistogramSnapshot) -> Value {
    let pairs: Vec<Value> =
        s.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| json!([i, n])).collect();
    Value::Array(pairs)
}

/// The session-scoped counters in aggregate, atomic form. One instance
/// banks the totals of closed sessions; another accumulates the live sum
/// for a stats snapshot. Both are filled through [`SessionTotals::absorb`]
/// — a single code path, so no counter can be banked and live-summed
/// inconsistently.
#[derive(Debug, Default)]
pub struct SessionTotals {
    /// Requests routed to sessions.
    pub requests: AtomicU64,
    /// Entities added (initial group rows included).
    pub entities_added: AtomicU64,
    /// Entities removed.
    pub entities_removed: AtomicU64,
    /// Discovery/scrollbar runs.
    pub discoveries: AtomicU64,
    /// Candidate pairs verified by the engines.
    pub pairs_verified: AtomicU64,
    /// Latency of discovery/scrollbar runs (the flagging pipeline).
    pub flag_latency: LatencyStat,
}

impl SessionTotals {
    /// Folds one session's counters — plus its engine's verified-pair
    /// count, which lives in the engine rather than in [`SessionMetrics`]
    /// — into the totals.
    pub fn absorb(&self, m: &SessionMetrics, pairs_verified: u64) {
        self.requests.fetch_add(m.requests, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        self.entities_added.fetch_add(m.entities_added, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        self.entities_removed.fetch_add(m.entities_removed, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        self.discoveries.fetch_add(m.discoveries, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        self.pairs_verified.fetch_add(pairs_verified, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        self.flag_latency.merge(&m.flag_latency);
    }
}

/// Server-wide counters, updated lock-free by every worker.
#[derive(Debug, Default)]
pub struct GlobalMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests handled (including ones answered with an error).
    pub requests: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Frames dropped for exceeding the size cap.
    pub oversized_frames: AtomicU64,
    /// Requests rejected at admission with the retryable `overloaded`
    /// error because the verify queue was full (async admission mode).
    pub overloaded: AtomicU64,
    /// `add` operations that rode a coalesced verify batch of two or more
    /// ops (async admission mode) — the amortization the batched
    /// signature/index pass buys.
    pub coalesced_adds: AtomicU64,
    /// Sessions created over the server's lifetime.
    pub sessions_created: AtomicU64,
    /// Sessions closed over the server's lifetime.
    pub sessions_closed: AtomicU64,
    /// Session-scoped counters banked from closed sessions; the global
    /// stats view adds the live-session sum on top, so closing a session
    /// never loses any of its counters from the totals.
    pub closed: SessionTotals,
}

impl GlobalMetrics {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    /// Snapshot of every counter. `sessions_live` and `live` (the live
    /// sessions' summed totals) are supplied by the caller — they live in
    /// the session store, not here. Every session-scoped figure is
    /// reported as banked-from-closed plus live.
    pub fn to_value(&self, sessions_live: u64, live: &SessionTotals) -> Value {
        let total = |closed: &AtomicU64, live: &AtomicU64| {
            // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            closed.load(Ordering::Relaxed).saturating_add(live.load(Ordering::Relaxed))
        };
        let flag_latency = self.closed.flag_latency.clone();
        flag_latency.merge(&live.flag_latency);
        json!({
            "connections": self.connections.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            "requests": self.requests.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            "errors": self.errors.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            "oversized_frames": self.oversized_frames.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            "overloaded": self.overloaded.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            "coalesced_adds": self.coalesced_adds.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            "sessions": {
                "created": self.sessions_created.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
                "closed": self.sessions_closed.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
                "live": sessions_live,
            },
            "session_requests": total(&self.closed.requests, &live.requests),
            "entities_added": total(&self.closed.entities_added, &live.entities_added),
            "entities_removed": total(&self.closed.entities_removed, &live.entities_removed),
            "discoveries": total(&self.closed.discoveries, &live.discoveries),
            "pairs_verified": total(&self.closed.pairs_verified, &live.pairs_verified),
            "flag_latency": flag_latency.to_value(),
        })
    }
}

/// Per-session counters; mutated only under the owning session's lock, so
/// plain integers suffice (the latency histogram is atomic-backed either
/// way).
#[derive(Debug, Default, Clone)]
pub struct SessionMetrics {
    /// Requests routed to this session.
    pub requests: u64,
    /// Entities added to this session (initial group rows included).
    pub entities_added: u64,
    /// Entities removed from this session.
    pub entities_removed: u64,
    /// Discovery/scrollbar runs on this session.
    pub discoveries: u64,
    /// Latency of this session's discovery/scrollbar runs.
    pub flag_latency: LatencyStat,
}

impl SessionMetrics {
    /// Records one discovery latency sample.
    pub fn record_flag_latency(&mut self, elapsed: Duration) {
        self.flag_latency.record(elapsed);
    }

    /// Snapshot, with the live-entity count and the engine's verified-pair
    /// counter supplied by the caller.
    pub fn to_value(&self, entities: usize, pairs_verified: u64) -> Value {
        json!({
            "requests": self.requests,
            "entities": entities,
            "entities_added": self.entities_added,
            "entities_removed": self.entities_removed,
            "discoveries": self.discoveries,
            "pairs_verified": pairs_verified,
            "flag_latency": self.flag_latency.to_value(),
        })
    }
}

/// Serializes a histogram snapshot with unit-agnostic keys — used for the
/// engine-trace histograms, whose unit is whatever the instrumentation
/// recorded (the serve layer records microseconds).
fn histogram_snapshot_value(s: &HistogramSnapshot) -> Value {
    json!({
        "count": s.count,
        "total": s.total,
        "max": s.max,
        "mean": s.mean(),
        "p50": s.p50,
        "p95": s.p95,
        "p99": s.p99,
        "buckets": sparse_buckets(s),
    })
}

/// Serializes a [`TraceReport`] for the `trace` protocol op and the CLI's
/// `--trace --json` output: per-phase aggregates, named counters (as one
/// object), per-rule hit counts, histogram snapshots, and the raw-span
/// tally (span *records* are deliberately not shipped — a long-lived
/// server holds up to the recorder cap of them, and the aggregates carry
/// the signal).
pub fn trace_report_to_value(report: &TraceReport) -> Value {
    let phases: Vec<Value> = report
        .phases
        .iter()
        .map(|p| json!({"name": p.name, "count": p.count, "total_ns": p.total_ns}))
        .collect();
    let mut counters = Map::new();
    for (name, value) in &report.counters {
        counters.insert(name.clone(), json!(value));
    }
    let rule_hits: Vec<Value> = report
        .rule_hits
        .iter()
        .map(|r| json!({"kind": r.kind.label(), "rule": r.rule, "hits": r.hits}))
        .collect();
    let histograms: Vec<Value> = report
        .histograms
        .iter()
        .map(|(name, s)| {
            let mut v = histogram_snapshot_value(s);
            if let Some(obj) = v.as_object_mut() {
                obj.insert("name".into(), json!(name));
            }
            v
        })
        .collect();
    json!({
        "phases": phases,
        "counters": counters,
        "rule_hits": rule_hits,
        "histograms": histograms,
        "spans": report.spans.len(),
        "dropped_spans": report.dropped_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stat_aggregates() {
        let s = LatencyStat::default();
        s.record(Duration::from_micros(10));
        s.record(Duration::from_micros(30));
        let v = s.to_value();
        assert_eq!(v["count"], 2);
        assert_eq!(v["total_micros"], 40);
        assert_eq!(v["max_micros"], 30);
        assert_eq!(v["mean_micros"], 20);
        // 30µs lands in [16, 32): the upper tail reports the bucket top.
        assert_eq!(v["p99_micros"], 31);
        assert!(v["p50_micros"].as_u64().unwrap() >= 10);
        // 10µs → bucket 4 ([8,16)), 30µs → bucket 5 ([16,32)).
        assert_eq!(v["buckets"], serde_json::json!([[4, 1], [5, 1]]));
    }

    #[test]
    fn latency_stat_merge_is_additive() {
        let a = LatencyStat::default();
        let b = LatencyStat::default();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        a.merge(&b);
        let v = a.to_value();
        assert_eq!(v["count"], 2);
        assert_eq!(v["total_micros"], 505);
        assert_eq!(v["max_micros"], 500);
    }

    #[test]
    fn session_metrics_snapshot() {
        let mut m = SessionMetrics::default();
        m.requests = 3;
        m.record_flag_latency(Duration::from_micros(8));
        let v = m.to_value(5, 17);
        assert_eq!(v["requests"], 3);
        assert_eq!(v["entities"], 5);
        assert_eq!(v["pairs_verified"], 17);
        assert_eq!(v["flag_latency"]["count"], 1);
    }

    #[test]
    fn global_metrics_snapshot_includes_gauges() {
        let g = GlobalMetrics::default();
        GlobalMetrics::bump(&g.requests);
        let live = SessionTotals::default();
        let mut m = SessionMetrics::default();
        m.entities_added = 4;
        live.absorb(&m, 9);
        let v = g.to_value(2, &live);
        assert_eq!(v["requests"], 1);
        assert_eq!(v["entities_added"], 4);
        assert_eq!(v["sessions"]["live"], 2);
        assert_eq!(v["pairs_verified"], 9);
    }

    #[test]
    fn closed_sessions_fold_into_every_global_total() {
        // Banking at close and live summing go through the same absorb
        // path, so every counter — not just pairs — survives a close.
        let g = GlobalMetrics::default();
        let mut m = SessionMetrics::default();
        m.requests = 2;
        m.entities_added = 5;
        m.entities_removed = 1;
        m.discoveries = 3;
        m.record_flag_latency(Duration::from_micros(40));
        g.closed.absorb(&m, 7);

        let live = SessionTotals::default();
        let mut live_m = SessionMetrics::default();
        live_m.entities_added = 2;
        live_m.record_flag_latency(Duration::from_micros(10));
        live.absorb(&live_m, 2);

        let v = g.to_value(1, &live);
        assert_eq!(v["entities_added"], 7);
        assert_eq!(v["entities_removed"], 1);
        assert_eq!(v["discoveries"], 3);
        assert_eq!(v["pairs_verified"], 9);
        assert_eq!(v["session_requests"], 2);
        assert_eq!(v["flag_latency"]["count"], 2);
        assert_eq!(v["flag_latency"]["total_micros"], 50);
    }

    #[test]
    fn trace_report_serializes_aggregates() {
        use dime_trace::{Recorder, RuleKind, TraceSink};
        let rec = Recorder::new();
        rec.add("pairs_verified", 12);
        rec.rule_hits(RuleKind::Positive, 0, 4);
        rec.latency("flag_micros", 100);
        let v = trace_report_to_value(&rec.snapshot());
        assert_eq!(v["counters"]["pairs_verified"], 12);
        assert_eq!(v["rule_hits"][0]["kind"], "positive");
        assert_eq!(v["rule_hits"][0]["hits"], 4);
        assert_eq!(v["histograms"][0]["name"], "flag_micros");
        assert_eq!(v["histograms"][0]["count"], 1);
        assert_eq!(v["spans"], 0);
        assert_eq!(v["dropped_spans"], 0);
    }
}
