//! The non-blocking admission layer: a zero-dependency epoll-based poll
//! loop owning every client socket, plus the small mio-style readiness
//! abstraction it runs on ([`Poller`] / [`Waker`] / [`Event`]).
//!
//! Division of labor (see `DESIGN.md` §10):
//!
//! * **this module** owns the listener and all connections, does
//!   non-blocking framed reads and writes with per-connection buffers,
//!   decodes frames into [`Request`]s, and *never touches the engine*;
//! * decoded ops flow through a **bounded** queue into the verify pool
//!   (`server.rs`); a full queue is answered inline with the retryable
//!   `overloaded` error — backpressure instead of unbounded buffering;
//! * completions flow back over an unbounded channel paired with a
//!   [`Waker`]; per-connection response *order* is preserved by a
//!   sequence-number reorder buffer, so pipelined requests still get
//!   pipelined responses even though the pool completes them out of
//!   order.
//!
//! The `dime-check` rule `blocking-reaches-poll-loop` treats every
//! function in this file as an entry point and walks the workspace call
//! graph: every `read`/`write`/`accept` reachable from here on the
//! admission thread must be against a non-blocking fd, and each such
//! call site carries a reasoned allow. The
//! raw `epoll`/`eventfd` syscall shim is confined to the [`sys`] module —
//! the single audited unsafe boundary of the crate.

use crate::metrics::GlobalMetrics;
use crate::protocol::{encode_frame, ErrorCode, Frame, FrameReader, Response};
use crate::server::{decode_line, Completion, OpJob, Shared};
use dime_trace::{span, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw syscall shim over glibc's `epoll_create1` / `epoll_ctl` /
/// `epoll_wait` / `eventfd` — the one place in the crate allowed to use
/// `unsafe`. Everything it exports is a safe function over owned fds; the
/// event loop above never sees a raw pointer.
mod sys {
    #![allow(unsafe_code)]

    use std::io;

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;
    const EFD_CLOEXEC: i32 = 0x80000;

    /// Kernel `struct epoll_event`. Packed on x86_64 (the kernel ABI
    /// packs it there); naturally aligned everywhere else.
    #[derive(Clone, Copy)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    // std already links libc; these are ordinary glibc symbols.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn epoll_create() -> io::Result<i32> {
        // SAFETY: no pointers cross the boundary; a negative return is an
        // errno, surfaced as io::Error.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// `epoll_ctl` with an interest mask and a caller token.
    pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning (EPOLL_CTL_DEL ignores the pointer on any kernel this
        // code targets, and a valid one is passed regardless).
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// `epoll_wait` into `buf`, returning how many events were filled.
    /// `Interrupted` (EINTR) is reported as zero events, not an error.
    pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the buffer is a live, exclusively borrowed slice whose
        // length bounds maxevents, so the kernel writes only into it.
        let n = unsafe {
            epoll_wait(epfd, buf.as_mut_ptr(), buf.len().min(i32::MAX as usize) as i32, timeout_ms)
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    /// A non-blocking `eventfd` for cross-thread wakeups.
    pub fn eventfd_new() -> io::Result<i32> {
        // SAFETY: no pointers cross the boundary.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// Adds 1 to the eventfd counter, waking any poller watching it.
    /// Best-effort: a full counter (the wakeup is already pending) or a
    /// racing close is not an error worth surfacing.
    pub fn eventfd_signal(fd: i32) {
        let one: u64 = 1;
        // SAFETY: the buffer is a live 8-byte local; the fd is
        // O_NONBLOCK, so the call cannot block.
        // dime-check: allow(blocking-reaches-poll-loop) — eventfd opened with EFD_NONBLOCK; cannot block
        let _ = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    }

    /// Resets the eventfd counter so the next signal is a fresh edge.
    pub fn eventfd_drain(fd: i32) {
        let mut buf: u64 = 0;
        // SAFETY: the buffer is a live 8-byte local; the fd is
        // O_NONBLOCK, so the call returns EAGAIN instead of blocking.
        // dime-check: allow(blocking-reaches-poll-loop) — eventfd opened with EFD_NONBLOCK; cannot block
        let _ = unsafe { read(fd, (&mut buf as *mut u64).cast(), 8) };
    }

    /// Closes an owned fd.
    pub fn close_fd(fd: i32) {
        // SAFETY: callers only pass fds they own exactly once (Drop).
        let _ = unsafe { close(fd) };
    }
}

/// Readiness of one registered fd, by token.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer closed its write side (`EPOLLRDHUP`): drain reads, keep
    /// writing what is owed.
    pub read_closed: bool,
    /// Hard error or full hangup (`EPOLLERR`/`EPOLLHUP`).
    pub error: bool,
}

/// Interest in readability.
pub(crate) const INTEREST_READ: u32 = sys::EPOLLIN | sys::EPOLLRDHUP;
/// Interest in readability and writability.
pub(crate) const INTEREST_READ_WRITE: u32 = INTEREST_READ | sys::EPOLLOUT;

/// A mio-style epoll wrapper: register fds under `u64` tokens, wait for
/// batches of [`Event`]s. Owns the epoll fd.
pub(crate) struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Opens a fresh epoll instance.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    /// Registers `fd` under `token` with the given interest mask.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters a fd. Best-effort: the kernel auto-deregisters on
    /// close anyway; an already-gone fd is not an error.
    pub fn delete(&self, fd: RawFd) {
        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Creates a [`Waker`] and registers its eventfd under `token`.
    pub fn waker(&self, token: u64) -> io::Result<Waker> {
        let fd = sys::eventfd_new()?;
        if let Err(e) = sys::ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, sys::EPOLLIN, token) {
            sys::close_fd(fd);
            return Err(e);
        }
        Ok(Waker { fd: Arc::new(EventFd(fd)) })
    }

    /// Blocks up to `timeout` for readiness, filling `out`. EINTR is a
    /// zero-event wakeup, not an error.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX).max(0);
        let n = sys::wait(self.epfd, &mut self.buf, ms)?;
        for raw in self.buf.iter().take(n) {
            let ev = *raw; // copy out of the (possibly packed) kernel struct
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                read_closed: bits & sys::EPOLLRDHUP != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

struct EventFd(RawFd);

impl Drop for EventFd {
    fn drop(&mut self) {
        sys::close_fd(self.0);
    }
}

/// A cloneable cross-thread wakeup handle for a [`Poller`]: the verify
/// pool signals it after pushing completions so the poll loop does not
/// sit out a full poll interval before writing responses.
#[derive(Clone)]
pub(crate) struct Waker {
    fd: Arc<EventFd>,
}

impl Waker {
    /// Wakes the poller. Cheap, non-blocking, callable from any thread.
    pub fn wake(&self) {
        sys::eventfd_signal(self.fd.0);
    }

    /// Consumes a pending wakeup edge (poll-loop side).
    fn drain(&self) {
        sys::eventfd_drain(self.fd.0);
    }
}

/// `Read` over a shared [`TcpStream`] without `try_clone` — a dup()ed fd
/// per connection would double the fd budget, and 10k+ held sessions is
/// exactly the point of this layer. `&TcpStream` implements `Read`, so
/// reads and writes go through one fd from one thread.
struct ArcRead(Arc<TcpStream>);

impl Read for ArcRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // dime-check: allow(blocking-reaches-poll-loop) — the stream is set_nonblocking(true) at accept; returns WouldBlock instead of blocking
        (&*self.0).read(buf)
    }
}

/// Listener token.
const TOKEN_LISTENER: u64 = 0;
/// Waker token.
pub(crate) const TOKEN_WAKER: u64 = 1;
/// First connection token.
const TOKEN_FIRST_CONN: u64 = 2;

/// Per-connection read buffer capacity. Deliberately small: with 10k+
/// held connections the per-connection buffers dominate the server's
/// memory, and the frame reader accumulates larger frames across fills.
const READ_BUF_BYTES: usize = 2048;

/// One admitted connection: the shared stream (one fd), the framing
/// reader over it, the response reorder buffer, and the write queue.
struct Conn {
    stream: Arc<TcpStream>,
    reader: FrameReader<io::BufReader<ArcRead>>,
    /// Next request sequence to assign (one per non-blank frame).
    next_seq: u64,
    /// Next response sequence owed to the peer.
    next_write: u64,
    /// Completions that arrived ahead of `next_write`, by sequence.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Bytes owed to the peer, already in order. `outpos` marks how much
    /// of it has been written.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Ops handed to the verify pool and not yet completed.
    inflight: u64,
    /// Whether `EPOLLOUT` is currently part of the interest mask.
    want_write: bool,
    /// Peer finished sending (EOF or `EPOLLRDHUP` drained).
    read_closed: bool,
    /// Hard failure: drop the connection without waiting for inflight.
    dead: bool,
    /// Last read/completion/write progress, for idle/drain/write-stall
    /// sweeps.
    last_progress: Instant,
}

impl Conn {
    fn new(stream: Arc<TcpStream>, max_frame_bytes: usize, now: Instant) -> Self {
        let reader = FrameReader::new(
            io::BufReader::with_capacity(READ_BUF_BYTES, ArcRead(Arc::clone(&stream))),
            max_frame_bytes,
        );
        Self {
            stream,
            reader,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            outbuf: Vec::new(),
            outpos: 0,
            inflight: 0,
            want_write: false,
            read_closed: false,
            dead: false,
            last_progress: now,
        }
    }

    /// Whether every admitted request has been answered and flushed.
    fn drained(&self) -> bool {
        self.inflight == 0 && self.pending.is_empty() && self.outpos >= self.outbuf.len()
    }
}

/// Runs the admission loop until shutdown completes its drain: every
/// connection either answered-and-closed or timed out of its grace
/// window. Dropping `ops` on return is what releases the verify pool.
pub(crate) fn admission_loop(
    mut poller: Poller,
    waker: &Waker,
    listener: TcpListener,
    shared: &Shared,
    ops: mpsc::SyncSender<OpJob>,
    done: &mpsc::Receiver<Completion>,
    queue_depth: &AtomicU64,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;

    let cfg = &shared.config;
    let poll_interval = cfg.poll_interval.max(Duration::from_millis(1));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    let mut draining = false;
    // dime-check: allow(wall-clock-in-core) — idle/drain sweep pacing for connection lifecycle, never discovery state
    let mut last_sweep = Instant::now();

    loop {
        poller.wait(poll_interval, &mut events)?;
        // dime-check: allow(wall-clock-in-core) — idle/drain sweep pacing for connection lifecycle, never discovery state
        let now = Instant::now();

        if !events.is_empty() {
            let _admission = span(shared.recorder.as_ref(), "admission");
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => {
                        if !draining {
                            accept_all(
                                &poller,
                                &listener,
                                shared,
                                &mut conns,
                                &mut next_token,
                                now,
                            );
                        }
                    }
                    TOKEN_WAKER => waker.drain(),
                    token => {
                        let Some(conn) = conns.get_mut(&token) else { continue };
                        if ev.error {
                            conn.dead = true;
                            continue;
                        }
                        if ev.readable || ev.read_closed {
                            read_conn(token, conn, shared, &ops, queue_depth, now);
                            // Inline responses (decode errors, shed
                            // `overloaded` ops) land in the reorder buffer
                            // with no verify-pool completion to flush them;
                            // flush here or they strand behind a quiet queue.
                            flush_ready(&poller, token, conn, now);
                        }
                        if ev.writable {
                            write_conn(&poller, token, conn, now);
                        }
                    }
                }
            }
        }

        // Route completions from the verify pool into their connections'
        // reorder buffers, then flush whatever became in-order.
        while let Ok(c) = done.try_recv() {
            if c.shutdown {
                shared.initiate_shutdown();
            }
            if let Some(conn) = conns.get_mut(&c.conn) {
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.pending.insert(c.seq, c.frame);
                flush_ready(&poller, c.conn, conn, now);
            }
        }

        if !draining && shared.shutdown.load(Ordering::SeqCst) {
            // Stop admitting: no new connections, and the listener's
            // backlog is abandoned exactly like the threaded accept loop
            // abandons it. Held connections get their drain grace below.
            draining = true;
            poller.delete(listener.as_raw_fd());
        }

        if now.duration_since(last_sweep) >= poll_interval {
            last_sweep = now;
            sweep(
                &poller,
                &mut conns,
                cfg.idle_timeout,
                cfg.write_timeout,
                poll_interval,
                draining,
                now,
            );
        } else {
            // Dead or EOF-drained connections still leave promptly
            // between sweeps.
            reap(&poller, &mut conns);
        }

        if draining && conns.is_empty() {
            return Ok(());
        }
    }
}

/// Accepts every pending connection (the listener is level-triggered and
/// non-blocking, so this drains the backlog without ever parking).
fn accept_all(
    poller: &Poller,
    listener: &TcpListener,
    shared: &Shared,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    now: Instant,
) {
    loop {
        // dime-check: allow(blocking-reaches-poll-loop) — the listener is set_nonblocking(true); returns WouldBlock instead of blocking
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller.add(stream.as_raw_fd(), token, INTEREST_READ).is_err() {
                    continue;
                }
                GlobalMetrics::bump(&shared.metrics.connections);
                conns
                    .insert(token, Conn::new(Arc::new(stream), shared.config.max_frame_bytes, now));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Reads every decodable frame off one connection: blank lines are
/// skipped, malformed or oversized frames are answered inline, decoded
/// ops are handed to the verify pool — or answered inline with the
/// retryable `overloaded` error when the bounded queue is full.
fn read_conn(
    token: u64,
    conn: &mut Conn,
    shared: &Shared,
    ops: &mpsc::SyncSender<OpJob>,
    queue_depth: &AtomicU64,
    now: Instant,
) {
    loop {
        match conn.reader.read_frame() {
            Ok(Frame::Eof) => {
                conn.read_closed = true;
                return;
            }
            Ok(Frame::Oversized) => {
                conn.last_progress = now;
                GlobalMetrics::bump(&shared.metrics.oversized_frames);
                GlobalMetrics::bump(&shared.metrics.requests);
                GlobalMetrics::bump(&shared.metrics.errors);
                let resp = Response::err(
                    ErrorCode::FrameTooLarge,
                    format!("frame exceeds {} bytes", shared.config.max_frame_bytes),
                );
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.pending.insert(seq, encode_frame(&resp.to_value()).into_bytes());
            }
            Ok(Frame::Line(line)) => {
                conn.last_progress = now;
                if line.trim().is_empty() {
                    continue;
                }
                let seq = conn.next_seq;
                conn.next_seq += 1;
                match decode_line(&line) {
                    Ok(req) => {
                        // Count the op before handing it over: a worker may
                        // pop (and decrement) the instant try_send returns,
                        // so incrementing afterwards could race the counter
                        // below zero.
                        // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
                        let depth = queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                        match ops.try_send(OpJob { conn: token, seq, req }) {
                            Ok(()) => {
                                conn.inflight += 1;
                                if shared.recorder.enabled() {
                                    shared.recorder.latency("verify_queue_depth", depth);
                                }
                            }
                            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                                // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
                                queue_depth.fetch_sub(1, Ordering::Relaxed);
                                GlobalMetrics::bump(&shared.metrics.requests);
                                GlobalMetrics::bump(&shared.metrics.errors);
                                GlobalMetrics::bump(&shared.metrics.overloaded);
                                let resp = Response::err(
                                    ErrorCode::Overloaded,
                                    "verify queue is full; retry after backoff",
                                );
                                conn.pending
                                    .insert(seq, encode_frame(&resp.to_value()).into_bytes());
                            }
                        }
                    }
                    Err(resp) => {
                        GlobalMetrics::bump(&shared.metrics.requests);
                        GlobalMetrics::bump(&shared.metrics.errors);
                        conn.pending.insert(seq, encode_frame(&resp.to_value()).into_bytes());
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return;
            }
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Moves in-order completions from the reorder buffer into the write
/// queue, then writes as much as the socket accepts.
fn flush_ready(poller: &Poller, token: u64, conn: &mut Conn, now: Instant) {
    while let Some(frame) = conn.pending.remove(&conn.next_write) {
        conn.next_write += 1;
        conn.outbuf.extend_from_slice(&frame);
    }
    write_conn(poller, token, conn, now);
}

/// Non-blocking write of the owed bytes; registers `EPOLLOUT` interest
/// exactly while a partial write leaves the buffer non-empty.
fn write_conn(poller: &Poller, token: u64, conn: &mut Conn, now: Instant) {
    while conn.outpos < conn.outbuf.len() {
        let chunk = conn.outbuf.get(conn.outpos..).unwrap_or(&[]);
        // dime-check: allow(blocking-reaches-poll-loop) — the stream is set_nonblocking(true) at accept; returns WouldBlock instead of blocking
        match (&*conn.stream).write(chunk) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.outpos += n;
                conn.last_progress = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.outpos >= conn.outbuf.len() {
        conn.outbuf.clear();
        conn.outpos = 0;
    }
    let want = conn.outpos < conn.outbuf.len();
    if want != conn.want_write {
        let interest = if want { INTEREST_READ_WRITE } else { INTEREST_READ };
        if poller.modify(conn.stream.as_raw_fd(), token, interest).is_ok() {
            conn.want_write = want;
        }
    }
}

/// Closes connections that are done or out of patience: dead ones, EOF'd
/// ones with nothing left to answer, idle ones past the idle timeout,
/// write-stalled ones past the write timeout, and — while draining —
/// quiet ones past the two-poll-interval drain grace (the same grace the
/// threaded path gives buffered requests).
fn sweep(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    idle_timeout: Duration,
    write_timeout: Duration,
    poll_interval: Duration,
    draining: bool,
    now: Instant,
) {
    conns.retain(|_, conn| {
        let quiet = now.duration_since(conn.last_progress);
        let stalled = conn.outpos < conn.outbuf.len() && quiet >= write_timeout;
        let expired = if draining {
            conn.drained() && quiet >= poll_interval * 2
        } else {
            conn.drained() && quiet >= idle_timeout
        };
        let finished = conn.read_closed && conn.drained();
        if conn.dead || stalled || expired || finished {
            poller.delete(conn.stream.as_raw_fd());
            return false;
        }
        true
    });
}

/// The between-sweeps fast path of [`sweep`]: only dead and
/// finished-and-drained connections leave.
fn reap(poller: &Poller, conns: &mut HashMap<u64, Conn>) {
    conns.retain(|_, conn| {
        if conn.dead || (conn.read_closed && conn.drained()) {
            poller.delete(conn.stream.as_raw_fd());
            return false;
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn poller_reports_readability_by_token() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, INTEREST_READ).unwrap();

        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "nothing written yet");

        (&a).write_all(b"hello\n").unwrap();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].error);
    }

    #[test]
    fn poller_reports_peer_close() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 3, INTEREST_READ).unwrap();
        drop(a);

        let mut events = Vec::new();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 3);
        assert!(events[0].read_closed || events[0].error || events[0].readable);
    }

    #[test]
    fn waker_wakes_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker(TOKEN_WAKER).unwrap();
        let mut events = Vec::new();

        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty());

        let remote = waker.clone();
        std::thread::spawn(move || remote.wake()).join().unwrap();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, TOKEN_WAKER);
        waker.drain();

        // Drained: no stale wakeup edge remains.
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "waker must be edge-consumed after drain");
    }

    #[test]
    fn write_interest_is_on_demand() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 5, INTEREST_READ).unwrap();

        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "read-only interest on an idle socket is silent");

        poller.modify(b.as_raw_fd(), 5, INTEREST_READ_WRITE).unwrap();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable, "an empty send buffer is writable immediately");
    }
}
