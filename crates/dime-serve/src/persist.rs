//! Session persistence glue: the durable mirror a session drags along
//! (its WAL, the row state snapshots are cut from, the checkpoint
//! cadence) and the recovery path that turns stored state back into a
//! live engine.
//!
//! Failure policy is **fail-open**: a persistence IO error marks the
//! session's mirror broken, bumps the store's `wal_failures` counter, and
//! warns once on stderr — the session keeps serving from memory. The
//! service degrades to exactly its non-persistent behavior instead of
//! refusing traffic, and the operator sees the failure in the global
//! `stats` response.

use crate::session::Session;
use dime_core::{parse_rules, IncrementalDime, Polarity, Rule};
use dime_data::{entity_row_values, load_group_value};
use dime_store::{
    RecoveredSession, SessionState, SessionWal, Store, StoreStatsSnapshot, WalOp, WalTap,
};
use dime_trace::{span, TraceSink};
use serde_json::{json, Value};
use std::io;
use std::sync::Arc;

/// The durable side of one live session. Every mutation the engine
/// accepts is appended to the WAL and applied to the string-row mirror
/// before the response leaves the handler; every `snapshot_every`
/// appends, the mirror is checkpointed and the log compacted.
pub struct SessionPersist {
    wal: SessionWal,
    state: SessionState,
    ops_since_checkpoint: usize,
    snapshot_every: usize,
    broken: bool,
    sink: Arc<dyn TraceSink + Send + Sync>,
}

impl SessionPersist {
    /// Wraps a freshly created session WAL (its `open` record already
    /// written by [`Store::create_session`]).
    pub fn new(
        wal: SessionWal,
        state: SessionState,
        snapshot_every: usize,
        sink: Arc<dyn TraceSink + Send + Sync>,
    ) -> Self {
        Self { wal, state, ops_since_checkpoint: 0, snapshot_every, broken: false, sink }
    }

    /// Resumes the mirror of a recovered session where the old process
    /// left off.
    pub fn resume(
        rec: RecoveredSession,
        snapshot_every: usize,
        sink: Arc<dyn TraceSink + Send + Sync>,
    ) -> Self {
        Self::new(rec.wal, rec.state, snapshot_every, sink)
    }

    /// Whether a persistence failure has detached this mirror.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Logs one added row (string values in schema order).
    pub fn log_add(&mut self, values: Vec<String>) {
        self.append(WalOp::AddEntity { values });
    }

    /// Logs a run of added rows as one WAL batch: every row is framed and
    /// sequenced exactly as [`SessionPersist::log_add`] would have, but
    /// the fsync policy is consulted once for the whole run — the
    /// durability amortization the verify pool's coalesced adds ride on.
    pub fn log_add_batch(&mut self, rows: Vec<Vec<String>>) {
        if self.broken || rows.is_empty() {
            return;
        }
        let ops: Vec<WalOp> = rows.into_iter().map(|values| WalOp::AddEntity { values }).collect();
        let sink = Arc::clone(&self.sink);
        let appended = {
            let _s = span(sink.as_ref(), "wal_append");
            self.wal.append_batch(&ops)
        };
        if let Err(e) = appended {
            self.fail("append", &e);
            return;
        }
        for op in &ops {
            self.state.apply(op);
        }
        self.ops_since_checkpoint += ops.len();
        self.maybe_checkpoint();
    }

    /// Logs one removed entity id.
    pub fn log_remove(&mut self, entity: usize) {
        self.append(WalOp::RemoveEntity { entity: entity as u64 });
    }

    /// Logs a full rule-set replacement. `rules` is the simple
    /// `dime_core::parse_rules` DSL (one rule per line), the same format
    /// the `open` record carries, so replay rebuilds the engine through
    /// the one existing parse path.
    pub fn log_set_rules(&mut self, rules: String) {
        self.append(WalOp::SetRules { rules });
    }

    /// Ends the session durably: after the `close` record is on disk the
    /// session can never resurrect, even if the directory removal that
    /// follows is lost to a crash.
    pub fn close(mut self) {
        if self.broken {
            return;
        }
        let sink = Arc::clone(&self.sink);
        let _s = span(sink.as_ref(), "wal_append");
        if let Err(e) = self.wal.close() {
            self.fail("close", &e);
        }
    }

    fn append(&mut self, op: WalOp) {
        if self.broken {
            return;
        }
        let sink = Arc::clone(&self.sink);
        let appended = {
            let _s = span(sink.as_ref(), "wal_append");
            self.wal.append(&op)
        };
        if let Err(e) = appended {
            self.fail("append", &e);
            return;
        }
        self.state.apply(&op);
        self.ops_since_checkpoint += 1;
        self.maybe_checkpoint();
    }

    fn maybe_checkpoint(&mut self) {
        if self.snapshot_every == 0 || self.ops_since_checkpoint < self.snapshot_every {
            return;
        }
        let sink = Arc::clone(&self.sink);
        let _s = span(sink.as_ref(), "snapshot");
        match self.wal.checkpoint(&self.state) {
            Ok(()) => self.ops_since_checkpoint = 0,
            Err(e) => self.fail("checkpoint", &e),
        }
    }

    fn fail(&mut self, what: &str, e: &io::Error) {
        self.broken = true;
        self.wal.stats().bump_wal_failures();
        eprintln!(
            "dime-serve: persistence {what} failed ({e}); the session keeps serving from memory"
        );
    }
}

/// Opens the WAL for a freshly created session: stores the group
/// document *without* its `entities` (the rows are logged individually,
/// so replay is uniform whether a row arrived in the document or through
/// `add_entities`). Returns `None` — session stays memory-only — if the
/// WAL cannot be created.
pub fn persist_new_session(
    store: &Store,
    id: u64,
    doc: &Value,
    rules: &str,
    attr_names: &[String],
    sink: Arc<dyn TraceSink + Send + Sync>,
    tap: Option<Arc<dyn WalTap>>,
) -> Option<SessionPersist> {
    let mut stored = doc.clone();
    if let Some(obj) = stored.as_object_mut() {
        obj.remove("entities");
    }
    let stored = stored.to_string();
    let wal = match store.create_session_with_tap(id, &stored, rules, tap) {
        Ok(w) => w,
        Err(e) => {
            store.stats().bump_wal_failures();
            eprintln!("dime-serve: session {id} starts without persistence ({e})");
            return None;
        }
    };
    let mut p = SessionPersist::new(
        wal,
        SessionState::new(stored, rules),
        store.config().snapshot_every,
        sink,
    );
    let names: Vec<&str> = attr_names.iter().map(String::as_str).collect();
    if let Some(rows) = doc.get("entities").and_then(Value::as_array) {
        for row in rows {
            // `load_group_value` already accepted every row, so this
            // conversion cannot fail; skipping defensively beats lying.
            if let Ok(values) = entity_row_values(row, &names) {
                p.log_add(values);
            }
        }
    }
    Some(p)
}

/// Rebuilds a live engine from recovered state, replaying the stored
/// group document, rules, and surviving rows. The rebuilt engine's
/// `discovery()` is bit-identical to the pre-crash engine's: the
/// incremental engine's interleaving invariant guarantees the result
/// depends only on the surviving rows, not on the add/remove history.
pub fn rebuild_engine(state: &SessionState) -> Result<IncrementalDime, String> {
    let doc: Value = serde_json::from_str(&state.doc)
        .map_err(|e| format!("stored group document is not JSON: {e}"))?;
    let group = load_group_value(&doc)
        .map_err(|e| format!("stored group document rejected: {}", e.message))?;
    let parsed = parse_rules(&state.rules, group.schema())
        .map_err(|e| format!("stored rules rejected: {e}"))?;
    let (pos, neg): (Vec<Rule>, Vec<Rule>) =
        parsed.into_iter().partition(|r| r.polarity == Polarity::Positive);
    if pos.is_empty() || neg.is_empty() {
        return Err("stored rules lost a polarity".into());
    }
    let rows: Vec<(Vec<String>, Option<Vec<Option<u32>>>)> =
        state.rows.iter().map(|r| (r.values.clone(), r.nodes.clone())).collect();
    Ok(IncrementalDime::reopen(group, pos, neg, &rows))
}

/// Rebuilds a full [`Session`] (engine + counters) from recovered state.
pub fn rebuild_session(
    state: &SessionState,
    sink: Arc<dyn TraceSink + Send + Sync>,
) -> Result<Session, String> {
    let engine = rebuild_engine(state)?.with_sink(sink);
    let mut session = Session::new(engine);
    session.metrics.entities_added = state.rows.len() as u64;
    Ok(session)
}

/// Shapes the store counters for the global `stats` response.
pub fn store_stats_to_value(s: &StoreStatsSnapshot) -> Value {
    json!({
        "records_appended": s.records_appended,
        "bytes_appended": s.bytes_appended,
        "snapshots_written": s.snapshots_written,
        "compactions": s.compactions,
        "sessions_recovered": s.sessions_recovered,
        "tails_truncated": s.tails_truncated,
        "wal_failures": s.wal_failures,
    })
}
