//! The wire protocol of the discovery service: newline-delimited JSON
//! frames over TCP, one request or response object per line.
//!
//! A request is a JSON object whose `"op"` field selects the operation:
//!
//! | op               | fields                         | reply data                      |
//! |------------------|--------------------------------|---------------------------------|
//! | `ping`           | —                              | `{"pong": true}`                |
//! | `create_session` | `group` (doc), `rules` (DSL)   | `{"session": id, "entities": n}`|
//! | `add_entities`   | `session`, `entities` (rows)   | `{"ids": [...], "entities": n}` |
//! | `remove_entity`  | `session`, `entity`            | `{"removed": id, "entities": n}`|
//! | `discovery`      | `session`                      | full discovery report           |
//! | `scrollbar`      | `session`, `step`              | one scrollbar step              |
//! | `stats`          | optional `session`             | counters                        |
//! | `trace`          | —                              | engine trace report             |
//! | `rules`          | `session`, `action`, ...       | rule-set summary / spec text    |
//! | `feedback`       | `session`, `labels`, `apply`   | refined rulespec + coverage     |
//! | `close_session`  | `session`                      | `{"closed": id}`                |
//! | `shutdown`       | —                              | `{"shutting_down": true}`       |
//!
//! `group` uses the same document format as `dime_data::load_group_json`
//! (schema + optional ontologies + optional initial entities); `rules` is
//! the textual DSL of `dime_core::parse_rules`. Entity rows are arrays in
//! schema order or objects keyed by attribute name.
//!
//! The `rules` op manages a session's live rule set: `action` is
//! `"install"` (with `spec`, a `dime-rulespec` program), `"ablate"` (with
//! `polarity` and `index`), or `"list"`. The `feedback` op carries
//! `labels`, an array of `[entity, belongs]` pairs, plus an optional
//! boolean `apply`; the server answers with a refined rulespec the client
//! can diff against the listed one.
//!
//! A response is `{"ok": <data>}` or
//! `{"err": {"code": "...", "message": "..."}}`. Error codes are the
//! machine-readable [`ErrorCode`] set; messages are human-readable and not
//! part of the stable surface.
//!
//! Framing is handled by [`FrameReader`], which enforces a maximum frame
//! size *while* reading — an oversized line is discarded (up to its
//! newline) and surfaced as [`Frame::Oversized`] so a server can answer
//! with a structured error instead of buffering without bound or killing
//! the connection.

use dime_core::Polarity;
use serde_json::{json, Value};
use std::fmt;
use std::io::{self, BufRead};

/// Default cap on a single frame (request or response line), in bytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Machine-readable error codes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a valid JSON object.
    BadFrame,
    /// The frame exceeded the server's maximum frame size.
    FrameTooLarge,
    /// The `"op"` field named no known operation.
    UnknownOp,
    /// The request was structurally invalid (missing/ill-typed fields,
    /// unparsable group or rules, out-of-range step, ...).
    BadRequest,
    /// The named session does not exist (never created, or closed).
    NoSuchSession,
    /// The named entity does not exist in the session.
    NoSuchEntity,
    /// Discovery was requested on a session with no entities.
    EmptyGroup,
    /// The request carried more entities than the admission limit allows.
    TooManyEntities,
    /// The server is at its session-count limit.
    TooManySessions,
    /// The server is draining for shutdown and accepts no new sessions.
    ShuttingDown,
    /// The owning backend is temporarily unreachable (a cluster router's
    /// shard is mid-failover). Retryable: the same request can succeed
    /// once a replacement primary is serving.
    Unavailable,
    /// The server failed internally (e.g. a panicking handler).
    Internal,
    /// The admission queue is full: the server is up but saturated. The
    /// request was not admitted; retrying after backoff is safe and is
    /// what [`crate::Client`] does under its retry policy.
    Overloaded,
    /// A `rules` install or ablate was rejected: the spec failed to
    /// compile against the session's schema, the set would lose a
    /// polarity, or validation found a rule that fires on every sampled
    /// pair. The message carries the `file:line:col` diagnostic or the
    /// validation verdict.
    RuleRejected,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NoSuchSession => "no_such_session",
            ErrorCode::NoSuchEntity => "no_such_entity",
            ErrorCode::EmptyGroup => "empty_group",
            ErrorCode::TooManyEntities => "too_many_entities",
            ErrorCode::TooManySessions => "too_many_sessions",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RuleRejected => "rule_rejected",
        }
    }

    /// Whether a request failing with this code may succeed verbatim on a
    /// retry (the failure is about the service's current state, not about
    /// the request itself).
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Unavailable | ErrorCode::Overloaded)
    }

    /// Parses a wire spelling back into a code.
    pub fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "bad_frame" => ErrorCode::BadFrame,
            "frame_too_large" => ErrorCode::FrameTooLarge,
            "unknown_op" => ErrorCode::UnknownOp,
            "bad_request" => ErrorCode::BadRequest,
            "no_such_session" => ErrorCode::NoSuchSession,
            "no_such_entity" => ErrorCode::NoSuchEntity,
            "empty_group" => ErrorCode::EmptyGroup,
            "too_many_entities" => ErrorCode::TooManyEntities,
            "too_many_sessions" => ErrorCode::TooManySessions,
            "shutting_down" => ErrorCode::ShuttingDown,
            "unavailable" => ErrorCode::Unavailable,
            "internal" => ErrorCode::Internal,
            "overloaded" => ErrorCode::Overloaded,
            "rule_rejected" => ErrorCode::RuleRejected,
            _ => return None,
        })
    }

    /// Every code, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 14] = [
        ErrorCode::BadFrame,
        ErrorCode::FrameTooLarge,
        ErrorCode::UnknownOp,
        ErrorCode::BadRequest,
        ErrorCode::NoSuchSession,
        ErrorCode::NoSuchEntity,
        ErrorCode::EmptyGroup,
        ErrorCode::TooManyEntities,
        ErrorCode::TooManySessions,
        ErrorCode::ShuttingDown,
        ErrorCode::Unavailable,
        ErrorCode::Internal,
        ErrorCode::Overloaded,
        ErrorCode::RuleRejected,
    ];
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured protocol failure: the code to answer with plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// The human-readable description.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(message: impl Into<String>) -> ProtocolError {
    ProtocolError::new(ErrorCode::BadRequest, message)
}

/// One rule-management action of the `rules` op.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleAction {
    /// Replaces the session's whole rule set with a compiled rulespec
    /// program (`dime-rulespec` syntax). The install is atomic: a spec
    /// that fails compilation or validation changes nothing.
    Install {
        /// The rulespec source text.
        spec: String,
        /// With `strict`, semantic-analysis findings (same/diff
        /// conflicts, subsumed rules, unsatisfiable thresholds) reject
        /// the install with `rule_rejected`; without it they come back
        /// as warnings in the OK payload. Optional on the wire,
        /// defaulting to `false`, so older clients are unaffected.
        strict: bool,
    },
    /// Removes one rule, keeping at least one rule of each polarity.
    Ablate {
        /// Which rule list to remove from.
        polarity: Polarity,
        /// 0-based index into that polarity's list.
        index: usize,
    },
    /// Returns the session's current rules as canonical rulespec text.
    List,
}

/// A request of the discovery service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Health check.
    Ping,
    /// Creates a session from a group document and a rules DSL string.
    CreateSession {
        /// The group document (`dime_data::load_group_json` format).
        group: Value,
        /// The rule set in the textual DSL, at least one positive and one
        /// negative rule.
        rules: String,
    },
    /// Appends entities (rows in schema order or keyed objects).
    AddEntities {
        /// Target session id.
        session: u64,
        /// The entity rows.
        entities: Vec<Value>,
    },
    /// Removes one entity by id (later ids shift down by one).
    RemoveEntity {
        /// Target session id.
        session: u64,
        /// The entity id to remove.
        entity: usize,
    },
    /// Runs discovery and returns the full report.
    Discovery {
        /// Target session id.
        session: u64,
    },
    /// Runs discovery and returns a single scrollbar step.
    Scrollbar {
        /// Target session id.
        session: u64,
        /// 0-based scrollbar position (negative rules `0..=step` enabled).
        step: usize,
    },
    /// Returns global counters, or one session's counters.
    Stats {
        /// Restrict to one session when set.
        session: Option<u64>,
    },
    /// Returns the server's engine trace report: per-phase timings,
    /// counters, per-rule hit counts, and latency histograms aggregated
    /// across every session's engine.
    Trace,
    /// Manages a session's live rule set: install a rulespec, ablate one
    /// rule, or list the current set.
    Rules {
        /// Target session id.
        session: u64,
        /// What to do with the session's rules.
        action: RuleAction,
    },
    /// Submits labeled `(entity, belongs)` verdicts and asks for a
    /// refined rulespec covering the residual examples the current rules
    /// miss. With `apply`, the refined set is also installed.
    Feedback {
        /// Target session id.
        session: u64,
        /// `(entity id, belongs-in-this-group)` verdicts; they accumulate
        /// across calls, later verdicts for an entity winning.
        labels: Vec<(usize, bool)>,
        /// Install the refined rule set in the same call.
        apply: bool,
    },
    /// Drops a session and frees its state.
    CloseSession {
        /// Target session id.
        session: u64,
    },
    /// Asks the server to drain in-flight work and stop.
    Shutdown,
}

impl Request {
    /// The wire spelling of this request's operation.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::CreateSession { .. } => "create_session",
            Request::AddEntities { .. } => "add_entities",
            Request::RemoveEntity { .. } => "remove_entity",
            Request::Discovery { .. } => "discovery",
            Request::Scrollbar { .. } => "scrollbar",
            Request::Stats { .. } => "stats",
            Request::Trace => "trace",
            Request::Rules { .. } => "rules",
            Request::Feedback { .. } => "feedback",
            Request::CloseSession { .. } => "close_session",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encodes the request as a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Ping => json!({"op": "ping"}),
            Request::CreateSession { group, rules } => {
                json!({"op": "create_session", "group": group, "rules": rules})
            }
            Request::AddEntities { session, entities } => {
                json!({"op": "add_entities", "session": session, "entities": entities})
            }
            Request::RemoveEntity { session, entity } => {
                json!({"op": "remove_entity", "session": session, "entity": entity})
            }
            Request::Discovery { session } => json!({"op": "discovery", "session": session}),
            Request::Scrollbar { session, step } => {
                json!({"op": "scrollbar", "session": session, "step": step})
            }
            Request::Stats { session: Some(s) } => json!({"op": "stats", "session": s}),
            Request::Stats { session: None } => json!({"op": "stats"}),
            Request::Trace => json!({"op": "trace"}),
            Request::Rules { session, action } => match action {
                RuleAction::Install { spec, strict: false } => {
                    json!({"op": "rules", "session": session, "action": "install", "spec": spec})
                }
                RuleAction::Install { spec, strict: true } => json!({
                    "op": "rules",
                    "session": session,
                    "action": "install",
                    "spec": spec,
                    "strict": true,
                }),
                RuleAction::Ablate { polarity, index } => json!({
                    "op": "rules",
                    "session": session,
                    "action": "ablate",
                    "polarity": polarity_str(*polarity),
                    "index": index,
                }),
                RuleAction::List => {
                    json!({"op": "rules", "session": session, "action": "list"})
                }
            },
            Request::Feedback { session, labels, apply } => json!({
                "op": "feedback",
                "session": session,
                "labels": labels
                    .iter()
                    .map(|(e, b)| json!([e, b]))
                    .collect::<Vec<_>>(),
                "apply": apply,
            }),
            Request::CloseSession { session } => {
                json!({"op": "close_session", "session": session})
            }
            Request::Shutdown => json!({"op": "shutdown"}),
        }
    }

    /// Decodes a request from a JSON value, with structured errors for
    /// unknown operations and missing/ill-typed fields.
    pub fn from_value(value: &Value) -> Result<Self, ProtocolError> {
        let obj = value.as_object().ok_or_else(|| bad("request must be a JSON object"))?;
        let op = match obj.get("op") {
            Some(v) => v.as_str().ok_or_else(|| bad("\"op\" must be a string"))?,
            None => return Err(bad("missing \"op\" field")),
        };
        Ok(match op {
            "ping" => Request::Ping,
            "create_session" => Request::CreateSession {
                group: need(obj, "create_session", "group")?.clone(),
                rules: need_str(obj, "create_session", "rules")?.to_string(),
            },
            "add_entities" => Request::AddEntities {
                session: need_u64(obj, "add_entities", "session")?,
                entities: need(obj, "add_entities", "entities")?
                    .as_array()
                    .ok_or_else(|| bad("add_entities: \"entities\" must be an array"))?
                    .clone(),
            },
            "remove_entity" => Request::RemoveEntity {
                session: need_u64(obj, "remove_entity", "session")?,
                entity: need_u64(obj, "remove_entity", "entity")? as usize,
            },
            "discovery" => Request::Discovery { session: need_u64(obj, "discovery", "session")? },
            "scrollbar" => Request::Scrollbar {
                session: need_u64(obj, "scrollbar", "session")?,
                step: need_u64(obj, "scrollbar", "step")? as usize,
            },
            "stats" => Request::Stats {
                session: match obj.get("session") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or_else(|| bad("stats: \"session\" must be an unsigned integer"))?,
                    ),
                },
            },
            "trace" => Request::Trace,
            "rules" => Request::Rules {
                session: need_u64(obj, "rules", "session")?,
                action: match need_str(obj, "rules", "action")? {
                    "install" => RuleAction::Install {
                        spec: need_str(obj, "rules", "spec")?.to_string(),
                        strict: match obj.get("strict") {
                            None | Some(Value::Null) => false,
                            Some(v) => v
                                .as_bool()
                                .ok_or_else(|| bad("rules: \"strict\" must be a boolean"))?,
                        },
                    },
                    "ablate" => RuleAction::Ablate {
                        polarity: match need_str(obj, "rules", "polarity")? {
                            "positive" => Polarity::Positive,
                            "negative" => Polarity::Negative,
                            other => {
                                return Err(bad(format!(
                                    "rules: unknown polarity {other:?} (use positive|negative)"
                                )))
                            }
                        },
                        index: need_u64(obj, "rules", "index")? as usize,
                    },
                    "list" => RuleAction::List,
                    other => {
                        return Err(bad(format!(
                            "rules: unknown action {other:?} (use install|ablate|list)"
                        )))
                    }
                },
            },
            "feedback" => {
                let raw = need(obj, "feedback", "labels")?
                    .as_array()
                    .ok_or_else(|| bad("feedback: \"labels\" must be an array"))?;
                let mut labels = Vec::with_capacity(raw.len());
                for (i, l) in raw.iter().enumerate() {
                    let pair = l.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                        bad(format!("feedback: label {i} must be an [entity, belongs] pair"))
                    })?;
                    let entity = pair.first().and_then(Value::as_u64).ok_or_else(|| {
                        bad(format!("feedback: label {i}: entity must be an unsigned integer"))
                    })? as usize;
                    let belongs = pair.get(1).and_then(Value::as_bool).ok_or_else(|| {
                        bad(format!("feedback: label {i}: belongs must be a boolean"))
                    })?;
                    labels.push((entity, belongs));
                }
                Request::Feedback {
                    session: need_u64(obj, "feedback", "session")?,
                    labels,
                    apply: match obj.get("apply") {
                        None | Some(Value::Null) => false,
                        Some(v) => v
                            .as_bool()
                            .ok_or_else(|| bad("feedback: \"apply\" must be a boolean"))?,
                    },
                }
            }
            "close_session" => {
                Request::CloseSession { session: need_u64(obj, "close_session", "session")? }
            }
            "shutdown" => Request::Shutdown,
            other => {
                return Err(ProtocolError::new(
                    ErrorCode::UnknownOp,
                    format!("unknown op {other:?}"),
                ))
            }
        })
    }
}

/// The wire spelling of a rule polarity.
pub fn polarity_str(p: Polarity) -> &'static str {
    match p {
        Polarity::Positive => "positive",
        Polarity::Negative => "negative",
    }
}

fn need<'a>(
    obj: &'a serde_json::Map<String, Value>,
    op: &str,
    key: &str,
) -> Result<&'a Value, ProtocolError> {
    obj.get(key).ok_or_else(|| bad(format!("{op}: missing \"{key}\" field")))
}

fn need_str<'a>(
    obj: &'a serde_json::Map<String, Value>,
    op: &str,
    key: &str,
) -> Result<&'a str, ProtocolError> {
    need(obj, op, key)?.as_str().ok_or_else(|| bad(format!("{op}: \"{key}\" must be a string")))
}

fn need_u64(
    obj: &serde_json::Map<String, Value>,
    op: &str,
    key: &str,
) -> Result<u64, ProtocolError> {
    need(obj, op, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("{op}: \"{key}\" must be an unsigned integer")))
}

/// A response of the discovery service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success, with the operation-specific payload.
    Ok(Value),
    /// Failure, with a machine-readable code and a human-readable message.
    Err {
        /// The machine-readable code.
        code: ErrorCode,
        /// The human-readable description.
        message: String,
    },
}

impl Response {
    /// Builds an error response.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Self {
        Response::Err { code, message: message.into() }
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }

    /// Encodes the response as a JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Ok(data) => json!({"ok": data}),
            Response::Err { code, message } => {
                json!({"err": {"code": code.as_str(), "message": message}})
            }
        }
    }

    /// Decodes a response from a JSON value.
    pub fn from_value(value: &Value) -> Result<Self, ProtocolError> {
        let obj = value.as_object().ok_or_else(|| bad("response must be a JSON object"))?;
        if let Some(data) = obj.get("ok") {
            return Ok(Response::Ok(data.clone()));
        }
        let err = obj
            .get("err")
            .and_then(Value::as_object)
            .ok_or_else(|| bad("response must carry \"ok\" or an \"err\" object"))?;
        let code = err
            .get("code")
            .and_then(Value::as_str)
            .and_then(ErrorCode::from_str)
            .ok_or_else(|| bad("error response carries no known \"code\""))?;
        let message = err.get("message").and_then(Value::as_str).unwrap_or_default().to_string();
        Ok(Response::Err { code, message })
    }
}

/// Encodes one value as a wire frame: compact JSON plus the terminating
/// newline. Compact JSON never contains a raw newline (control characters
/// inside strings are escaped), so framing is unambiguous.
pub fn encode_frame(value: &Value) -> String {
    let mut s = serde_json::to_string(value).unwrap_or_else(|_| {
        r#"{"err":{"code":"internal","message":"response encoding failed"}}"#.to_string()
    });
    s.push('\n');
    s
}

/// One framing outcome from [`FrameReader::read_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// The peer closed the connection (no partial frame pending).
    Eof,
    /// One complete line (without its newline).
    Line(String),
    /// A line exceeded the frame cap; it was discarded up to its newline
    /// and the stream is re-synchronized for the next frame.
    Oversized,
}

/// A newline-delimited frame reader with a hard per-frame size cap.
///
/// Reads never buffer more than the cap: once a line exceeds it, the
/// reader switches to discard mode, consumes up to the terminating
/// newline, and reports [`Frame::Oversized`] — the connection stays usable.
/// Partial frames survive read timeouts (`WouldBlock`/`TimedOut` are
/// returned to the caller with all buffered bytes retained), which is what
/// lets a server poll its shutdown flag between reads without corrupting
/// a slowly-arriving frame.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    partial: Vec<u8>,
    discarding: bool,
    max_bytes: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered reader with the given per-frame cap.
    pub fn new(inner: R, max_bytes: usize) -> Self {
        Self { inner, partial: Vec::new(), discarding: false, max_bytes }
    }

    /// Reads the next frame. `WouldBlock`/`TimedOut` IO errors surface as
    /// `Err` with the partial frame retained; call again to resume.
    pub fn read_frame(&mut self) -> io::Result<Frame> {
        loop {
            let buf = match self.inner.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                // EOF. A trailing unterminated line still counts as a frame.
                if self.discarding {
                    self.discarding = false;
                    return Ok(Frame::Oversized);
                }
                if self.partial.is_empty() {
                    return Ok(Frame::Eof);
                }
                let line = String::from_utf8_lossy(&self.partial).into_owned();
                self.partial.clear();
                return Ok(Frame::Line(line));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if self.discarding {
                        self.inner.consume(pos + 1);
                        self.discarding = false;
                        return Ok(Frame::Oversized);
                    }
                    // dime-check: allow(panic-in-service) — pos comes from position() over this very buf, so the range is in bounds
                    self.partial.extend_from_slice(&buf[..pos]);
                    self.inner.consume(pos + 1);
                    if self.partial.len() > self.max_bytes {
                        self.partial.clear();
                        return Ok(Frame::Oversized);
                    }
                    let mut line = std::mem::take(&mut self.partial);
                    // Tolerate CRLF peers.
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Frame::Line(String::from_utf8_lossy(&line).into_owned()));
                }
                None => {
                    let n = buf.len();
                    if !self.discarding {
                        self.partial.extend_from_slice(buf);
                        if self.partial.len() > self.max_bytes {
                            self.partial.clear();
                            self.discarding = true;
                        }
                    }
                    self.inner.consume(n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let line = encode_frame(&req.to_value());
        let value: Value = serde_json::from_str(line.trim_end()).unwrap();
        assert_eq!(&Request::from_value(&value).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::CreateSession {
            group: json!({"schema": [{"name": "A"}], "entities": []}),
            rules: "positive: overlap(A) >= 1\nnegative: overlap(A) <= 0".into(),
        });
        roundtrip_request(&Request::AddEntities {
            session: 7,
            entities: vec![json!(["x"]), json!({"A": "y"})],
        });
        roundtrip_request(&Request::RemoveEntity { session: 7, entity: 3 });
        roundtrip_request(&Request::Discovery { session: 1 });
        roundtrip_request(&Request::Scrollbar { session: 1, step: 2 });
        roundtrip_request(&Request::Stats { session: None });
        roundtrip_request(&Request::Stats { session: Some(4) });
        roundtrip_request(&Request::Trace);
        roundtrip_request(&Request::Rules {
            session: 7,
            action: RuleAction::Install {
                spec: "same(X, Y) :- overlap(A) >= 2.".into(),
                strict: false,
            },
        });
        roundtrip_request(&Request::Rules {
            session: 7,
            action: RuleAction::Ablate { polarity: Polarity::Positive, index: 1 },
        });
        roundtrip_request(&Request::Rules {
            session: 7,
            action: RuleAction::Ablate { polarity: Polarity::Negative, index: 0 },
        });
        roundtrip_request(&Request::Rules { session: 7, action: RuleAction::List });
        roundtrip_request(&Request::Feedback {
            session: 7,
            labels: vec![(0, true), (3, false)],
            apply: true,
        });
        roundtrip_request(&Request::Feedback { session: 7, labels: vec![], apply: false });
    }

    #[test]
    fn rules_requests_reject_bad_shapes() {
        let e = Request::from_value(&json!({"op": "rules", "session": 1, "action": "explode"}))
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_value(&json!({
            "op": "rules", "session": 1, "action": "ablate", "polarity": "sideways", "index": 0
        }))
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_value(&json!({"op": "rules", "session": 1, "action": "install"}))
            .unwrap_err();
        assert!(e.message.contains("spec"), "{e}");
        let e = Request::from_value(&json!({
            "op": "feedback", "session": 1, "labels": [[0, true], [1]]
        }))
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_value(&json!({
            "op": "feedback", "session": 1, "labels": [[0, "yes"]]
        }))
        .unwrap_err();
        assert!(e.message.contains("boolean"), "{e}");
    }

    #[test]
    fn feedback_apply_defaults_to_false() {
        let req =
            Request::from_value(&json!({"op": "feedback", "session": 2, "labels": [[5, false]]}))
                .unwrap();
        assert_eq!(req, Request::Feedback { session: 2, labels: vec![(5, false)], apply: false });
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Ok(json!({"pong": true})),
            Response::Ok(Value::Null),
            Response::err(ErrorCode::NoSuchSession, "session 9 does not exist"),
        ] {
            let line = encode_frame(&resp.to_value());
            let value: Value = serde_json::from_str(line.trim_end()).unwrap();
            assert_eq!(Response::from_value(&value).unwrap(), resp);
        }
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_str(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_str("sorcery"), None);
    }

    #[test]
    fn unknown_op_and_missing_fields_are_structured() {
        let e = Request::from_value(&json!({"op": "sorcery"})).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownOp);
        let e = Request::from_value(&json!({"op": "discovery"})).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_value(&json!({"op": "discovery", "session": "one"})).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_value(&json!([1, 2])).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_value(&json!({"session": 1})).unwrap_err();
        assert!(e.message.contains("op"), "{e}");
    }

    #[test]
    fn frame_reader_splits_lines() {
        let data = b"{\"op\":\"ping\"}\n{\"op\":\"shutdown\"}\nrest-without-newline";
        let mut r = FrameReader::new(&data[..], 1 << 10);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("{\"op\":\"ping\"}".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Line("{\"op\":\"shutdown\"}".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Line("rest-without-newline".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn frame_reader_discards_oversized_lines_and_resyncs() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut r = FrameReader::new(&data[..], 16);
        assert_eq!(r.read_frame().unwrap(), Frame::Oversized);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("ok".into()));
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn frame_reader_oversized_at_eof() {
        let data = vec![b'x'; 64];
        let mut r = FrameReader::new(&data[..], 16);
        assert_eq!(r.read_frame().unwrap(), Frame::Oversized);
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn frame_reader_strips_carriage_returns() {
        let data = b"{\"op\":\"ping\"}\r\n";
        let mut r = FrameReader::new(&data[..], 1 << 10);
        assert_eq!(r.read_frame().unwrap(), Frame::Line("{\"op\":\"ping\"}".into()));
    }

    #[test]
    fn encode_frame_is_single_line() {
        let v = json!({"text": "line one\nline two", "n": 3});
        let frame = encode_frame(&v);
        assert_eq!(frame.matches('\n').count(), 1);
        assert!(frame.ends_with('\n'));
    }
}
