#![deny(unsafe_code)] // dime-check: allow(forbid-unsafe-drift) — poll::sys scope-allows syscalls
//! A concurrent discovery service: many live groups, each backed by the
//! incremental DIME engine, served over a newline-delimited JSON protocol
//! on plain TCP — `std::net`, one epoll-driven admission thread, and a
//! verify pool of scoped threads, no async runtime.
//!
//! The moving parts:
//!
//! * [`protocol`](crate::protocol) — the framed request/response
//!   vocabulary ([`Request`], [`Response`], [`ErrorCode`]) and the
//!   size-capped [`FrameReader`], shared by server and client;
//! * [`Server`] — a non-blocking admission/framing layer (`poll.rs`, a
//!   zero-dependency epoll readiness loop) feeding a fixed verify pool
//!   through a bounded queue, over a sharded
//!   [`SessionStore`](session::SessionStore), with per-request panic
//!   isolation, admission limits, backpressure (the retryable
//!   `overloaded` error), idle timeouts, and graceful drain-on-shutdown;
//!   [`AdmissionMode::Threaded`] keeps the original
//!   thread-per-connection pool as the benchmark baseline;
//! * [`Client`] — a small blocking client library;
//! * [`metrics`](crate::metrics) — per-session and global counters
//!   surfaced by the `stats` operation;
//! * [`persist`](crate::persist) — the glue over `dime-store`'s WAL:
//!   each session's durable mirror, checkpoint cadence, and the
//!   crash-recovery path that rebuilds live engines at bind time
//!   (enabled by [`ServeConfig::store`], off by default).
//!
//! Start a server and talk to it:
//!
//! ```
//! use dime_serve::{Client, ServeConfig, Server};
//! use serde_json::json;
//!
//! let server = Server::bind(ServeConfig { workers: 2, ..ServeConfig::default() })?;
//! let addr = server.local_addr();
//! let runner = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let session = client.create_session(
//!     &json!({"schema": [{"name": "Authors", "tokenizer": {"list": ","}}]}),
//!     "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0",
//! )?;
//! client.add_entities(session, &[
//!     json!(["ann, bob"]),
//!     json!(["ann, bob, carl"]),
//!     json!(["dora"]),
//! ])?;
//! let report = client.discovery(session)?;
//! assert_eq!(report["mis_categorized"][0]["id"], 2);
//!
//! client.shutdown()?;              // drains in-flight work, then stops
//! runner.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same group/rules formats drive the `dime serve` / `dime client`
//! CLI subcommands; `examples/streaming_profile.rs` in the root crate
//! walks the underlying incremental engine directly.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod persist;
mod poll;
pub mod protocol;
mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use protocol::{
    encode_frame, polarity_str, ErrorCode, Frame, FrameReader, ProtocolError, Request, Response,
    RuleAction, DEFAULT_MAX_FRAME_BYTES,
};
pub use server::{AdmissionMode, ServeConfig, Server, ServerHandle, WalTapHandle};
