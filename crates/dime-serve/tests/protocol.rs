//! Wire-protocol tests: property-based round-trips of the frame
//! vocabulary, and malformed-frame handling against a live server —
//! truncated lines, oversized frames, and unknown ops must come back as
//! structured errors on the same connection, never kill a worker.

use dime_core::Polarity;
use dime_serve::{
    encode_frame, ErrorCode, Frame, FrameReader, Request, Response, RuleAction, ServeConfig, Server,
};
use proptest::prelude::*;
use serde_json::{json, Value};
use std::io::{BufReader, Write};
use std::net::TcpStream;

fn arb_text() -> impl Strategy<Value = String> {
    // Exercises escaping: quotes, backslashes, newlines, unicode.
    proptest::string::string_regex("[a-z\"\\\\\n\u{1F980}\u{7}]{0,12}").unwrap()
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Shutdown),
        any::<u64>().prop_map(|session| Request::Discovery { session }),
        any::<u64>().prop_map(|session| Request::CloseSession { session }),
        (any::<u64>(), any::<usize>())
            .prop_map(|(session, step)| Request::Scrollbar { session, step }),
        (any::<u64>(), any::<usize>())
            .prop_map(|(session, entity)| Request::RemoveEntity { session, entity }),
        proptest::option::of(any::<u64>()).prop_map(|session| Request::Stats { session }),
        (arb_text(), arb_text()).prop_map(|(name, rules)| Request::CreateSession {
            group: json!({"schema": [{"name": name}], "entities": []}),
            rules,
        }),
        (any::<u64>(), proptest::collection::vec(arb_text(), 0..4)).prop_map(|(session, rows)| {
            Request::AddEntities {
                session,
                entities: rows.into_iter().map(|r| json!([r])).collect(),
            }
        }),
        (any::<u64>(), arb_rule_action())
            .prop_map(|(session, action)| Request::Rules { session, action }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<usize>(), any::<bool>()), 0..4),
            any::<bool>(),
        )
            .prop_map(|(session, labels, apply)| Request::Feedback {
                session,
                labels,
                apply
            }),
    ]
}

fn arb_rule_action() -> impl Strategy<Value = RuleAction> {
    prop_oneof![
        Just(RuleAction::List),
        // Specs are opaque text at the protocol layer — hostile bytes
        // must survive the frame trip even if they'd never compile.
        (arb_text(), any::<bool>()).prop_map(|(spec, strict)| RuleAction::Install { spec, strict }),
        (any::<bool>(), any::<usize>()).prop_map(|(pos, index)| RuleAction::Ablate {
            polarity: if pos { Polarity::Positive } else { Polarity::Negative },
            index,
        }),
    ]
}

proptest! {
    /// Every request survives encode → frame → parse → decode, and its
    /// frame is a single line (compact JSON escapes raw newlines).
    #[test]
    fn prop_request_frames_roundtrip(req in arb_request()) {
        let frame = encode_frame(&req.to_value());
        prop_assert_eq!(frame.matches('\n').count(), 1, "frame must be one line");
        prop_assert!(frame.ends_with('\n'));
        let v: Value = serde_json::from_str(frame.trim_end()).unwrap();
        prop_assert_eq!(Request::from_value(&v).unwrap(), req);
    }

    /// Every response survives the same trip.
    #[test]
    fn prop_response_frames_roundtrip(
        ok in any::<bool>(),
        text in arb_text(),
        code_ix in 0usize..ErrorCode::ALL.len(),
    ) {
        let resp = if ok {
            Response::Ok(json!({"payload": text}))
        } else {
            Response::err(ErrorCode::ALL[code_ix], text)
        };
        let frame = encode_frame(&resp.to_value());
        prop_assert_eq!(frame.matches('\n').count(), 1);
        let v: Value = serde_json::from_str(frame.trim_end()).unwrap();
        prop_assert_eq!(Response::from_value(&v).unwrap(), resp);
    }

    /// A frame reader over arbitrary chunks of concatenated frames
    /// recovers exactly the original lines.
    #[test]
    fn prop_frame_reader_reassembles(lines in proptest::collection::vec("[a-z{}\" ]{0,40}", 0..8)) {
        let mut bytes = Vec::new();
        for l in &lines {
            bytes.extend_from_slice(l.as_bytes());
            bytes.push(b'\n');
        }
        let mut reader = FrameReader::new(&bytes[..], 1 << 10);
        for l in &lines {
            prop_assert_eq!(reader.read_frame().unwrap(), Frame::Line(l.clone()));
        }
        prop_assert_eq!(reader.read_frame().unwrap(), Frame::Eof);
    }
}

/// Spawns a server with a small frame cap; returns (addr, join-handle,
/// shutdown-handle).
fn spawn_server(
) -> (std::net::SocketAddr, std::thread::JoinHandle<std::io::Result<()>>, dime_serve::ServerHandle)
{
    let server =
        Server::bind(ServeConfig { workers: 2, max_frame_bytes: 512, ..ServeConfig::default() })
            .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, runner, handle)
}

struct RawConn {
    writer: TcpStream,
    reader: FrameReader<BufReader<TcpStream>>,
}

impl RawConn {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Self { writer, reader: FrameReader::new(BufReader::new(stream), 1 << 20) }
    }

    fn send(&mut self, bytes: &str) {
        self.writer.write_all(bytes.as_bytes()).expect("write");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Response {
        match self.reader.read_frame().expect("read") {
            Frame::Line(l) => {
                let v: Value = serde_json::from_str(&l).expect("response JSON");
                Response::from_value(&v).expect("response shape")
            }
            other => panic!("expected a response line, got {other:?}"),
        }
    }

    fn recv_err(&mut self) -> ErrorCode {
        match self.recv() {
            Response::Err { code, .. } => code,
            Response::Ok(v) => panic!("expected an error, got ok: {v}"),
        }
    }
}

#[test]
fn malformed_frames_get_structured_errors_and_the_worker_survives() {
    let (addr, runner, handle) = spawn_server();
    let mut conn = RawConn::connect(addr);

    conn.send("{truncated json\n");
    assert_eq!(conn.recv_err(), ErrorCode::BadFrame);

    conn.send(&format!("{}\n", "x".repeat(600)));
    assert_eq!(conn.recv_err(), ErrorCode::FrameTooLarge);

    conn.send("{\"op\": \"sorcery\"}\n");
    assert_eq!(conn.recv_err(), ErrorCode::UnknownOp);

    conn.send("{\"op\": \"discovery\"}\n");
    assert_eq!(conn.recv_err(), ErrorCode::BadRequest);

    conn.send("{\"op\": \"discovery\", \"session\": \"nine\"}\n");
    assert_eq!(conn.recv_err(), ErrorCode::BadRequest);

    conn.send("{\"op\": \"discovery\", \"session\": 42}\n");
    assert_eq!(conn.recv_err(), ErrorCode::NoSuchSession);

    conn.send("[1, 2, 3]\n");
    assert_eq!(conn.recv_err(), ErrorCode::BadRequest);

    // The same connection — and so the same worker — still serves
    // well-formed traffic after every kind of garbage.
    conn.send("{\"op\": \"ping\"}\n");
    assert_eq!(conn.recv(), Response::Ok(json!({"pong": true})));

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn truncated_final_line_still_gets_a_response() {
    let (addr, runner, handle) = spawn_server();
    let mut conn = RawConn::connect(addr);
    // An unterminated, half-written frame followed by EOF on the write
    // half: the server must answer (bad_frame) rather than hang or die.
    conn.send("{\"op\": \"pi");
    conn.writer.shutdown(std::net::Shutdown::Write).expect("half-close");
    assert_eq!(conn.recv_err(), ErrorCode::BadFrame);
    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn pipelined_requests_get_ordered_responses() {
    let (addr, runner, handle) = spawn_server();
    let mut conn = RawConn::connect(addr);
    conn.send("{\"op\": \"ping\"}\n{\"op\": \"stats\"}\n{\"op\": \"ping\"}\n");
    assert_eq!(conn.recv(), Response::Ok(json!({"pong": true})));
    match conn.recv() {
        Response::Ok(v) => assert!(v.get("requests").is_some(), "stats payload: {v}"),
        other => panic!("stats failed: {other:?}"),
    }
    assert_eq!(conn.recv(), Response::Ok(json!({"pong": true})));
    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn blank_lines_are_ignored_between_frames() {
    let (addr, runner, handle) = spawn_server();
    let mut conn = RawConn::connect(addr);
    conn.send("\n  \n{\"op\": \"ping\"}\n");
    assert_eq!(conn.recv(), Response::Ok(json!({"pong": true})));
    handle.shutdown();
    runner.join().unwrap().unwrap();
}
