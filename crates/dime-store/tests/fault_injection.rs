//! Fault injection against the WAL: the log is truncated at *every* byte
//! offset and corrupted at *every* byte position, and recovery must (a)
//! never panic, (b) recover exactly the longest prefix of fully durable
//! records before the damage, and (c) never resurrect a half-applied
//! operation — a record is either folded in whole or not at all.

use dime_store::wal::{recover, Recovery, SessionWal, SNAPSHOT_FILE, WAL_FILE};
use dime_store::{FsyncPolicy, Row, SessionState, StoreStats, WalOp};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dime-fault-{tag}-{}-{n}", std::process::id()))
}

const WAL_HEADER: usize = 8;
/// Per-frame overhead: u32 length + u32 crc.
const FRAME_HEADER: usize = 8;

fn script() -> Vec<WalOp> {
    vec![
        WalOp::Open {
            doc: "{\"schema\": [{\"name\": \"A\"}]}".into(),
            rules: "positive: x".into(),
        },
        WalOp::AddEntity { values: vec!["ann, bob".into()] },
        WalOp::AddEntityWithNodes { values: vec!["carl".into()], nodes: vec![Some(3)] },
        WalOp::AddEntity { values: vec!["dora".into()] },
        WalOp::RemoveEntity { entity: 1 },
        WalOp::AddEntity { values: vec!["edna".into()] },
    ]
}

/// Folds the first `k` script operations the way recovery does.
fn fold(ops: &[WalOp], k: usize) -> Option<SessionState> {
    let mut state: Option<SessionState> = None;
    for op in &ops[..k] {
        match op {
            WalOp::Open { doc, rules } => {
                state = Some(SessionState::new(doc.clone(), rules.clone()))
            }
            other => {
                state.as_mut()?.apply(other);
            }
        }
    }
    state
}

/// End offset of each record in the WAL file (header included), computed
/// from the same encoder the WAL uses.
fn record_ends(ops: &[WalOp]) -> Vec<usize> {
    let mut at = WAL_HEADER;
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            at += FRAME_HEADER + dime_store::record::encode_record(i as u64 + 1, op).len();
            at
        })
        .collect()
}

/// Writes the script into a fresh WAL and returns the raw file bytes.
fn written_wal(tag: &str, ops: &[WalOp]) -> Vec<u8> {
    let dir = temp_dir(tag);
    let mut wal =
        SessionWal::create(&dir, FsyncPolicy::Never, Arc::new(StoreStats::default())).unwrap();
    for op in ops {
        wal.append(op).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let bytes = fs::read(dir.join(WAL_FILE)).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    bytes
}

/// Recovery of a directory holding exactly `wal_bytes` (and optionally a
/// snapshot), returning the recovered rows or `None` for
/// closed/unrecoverable.
fn recover_bytes(tag: &str, wal_bytes: &[u8], snapshot: Option<&[u8]>) -> Option<Vec<Row>> {
    let dir = temp_dir(tag);
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(WAL_FILE), wal_bytes).unwrap();
    if let Some(snap) = snapshot {
        fs::write(dir.join(SNAPSHOT_FILE), snap).unwrap();
    }
    let out = match recover(&dir, FsyncPolicy::Never, Arc::new(StoreStats::default())).unwrap() {
        Recovery::Live(rec) => Some(rec.state.rows),
        Recovery::Closed | Recovery::Unrecoverable => None,
    };
    fs::remove_dir_all(&dir).unwrap();
    out
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_durable_prefix() {
    let ops = script();
    let bytes = written_wal("truncsrc", &ops);
    let ends = record_ends(&ops);
    assert_eq!(*ends.last().unwrap(), bytes.len(), "boundary bookkeeping must match the file");

    for cut in 0..=bytes.len() {
        // Number of records fully on disk at this cut.
        let k = ends.iter().filter(|&&e| e <= cut).count();
        let recovered = recover_bytes("trunc", &bytes[..cut], None);
        let expected = if cut < WAL_HEADER { None } else { fold(&ops, k).map(|s| s.rows) };
        assert_eq!(recovered, expected, "cut at byte {cut} (k = {k})");
    }
}

#[test]
fn a_flipped_byte_truncates_from_the_damaged_record_on() {
    let ops = script();
    let bytes = written_wal("flipsrc", &ops);
    let ends = record_ends(&ops);

    for pos in 0..bytes.len() {
        let mut dup = bytes.clone();
        dup[pos] ^= 0x40;
        // The damaged record is the first whose span contains `pos`; all
        // records before it must survive, none after it may.
        let damaged = ends.iter().filter(|&&e| e <= pos).count();
        let recovered = recover_bytes("flip", &dup, None);
        let expected = if pos < WAL_HEADER { None } else { fold(&ops, damaged).map(|s| s.rows) };
        assert_eq!(recovered, expected, "flip at byte {pos} (damaged record {damaged})");
    }
}

#[test]
fn snapshot_plus_torn_tail_resumes_from_the_snapshot() {
    let ops = script();
    // Checkpoint after the first three operations, then append the rest.
    let dir = temp_dir("snaptail");
    let mut wal =
        SessionWal::create(&dir, FsyncPolicy::Never, Arc::new(StoreStats::default())).unwrap();
    let mut state = SessionState::new("", "");
    for op in &ops[..3] {
        wal.append(op).unwrap();
        match op {
            WalOp::Open { doc, rules } => state = SessionState::new(doc.clone(), rules.clone()),
            other => {
                state.apply(other);
            }
        }
    }
    wal.checkpoint(&state).unwrap();
    for op in &ops[3..] {
        wal.append(op).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let snap = fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
    let tail = fs::read(dir.join(WAL_FILE)).unwrap();
    fs::remove_dir_all(&dir).unwrap();

    // Tail record ends, relative to the compacted file.
    let mut ends = vec![WAL_HEADER];
    let mut at = WAL_HEADER;
    for (i, op) in ops[3..].iter().enumerate() {
        at += FRAME_HEADER + dime_store::record::encode_record(i as u64 + 4, op).len();
        ends.push(at);
    }
    assert_eq!(at, tail.len());

    for cut in 0..=tail.len() {
        let k = ends.iter().filter(|&&e| e > WAL_HEADER && e <= cut).count();
        let recovered = recover_bytes("snapcut", &tail[..cut], Some(&snap));
        // With a durable snapshot even a fully destroyed tail recovers.
        let expected = fold(&ops, 3 + k).map(|s| s.rows);
        assert_eq!(recovered, expected, "snapshot + tail cut at {cut}");
    }
}

#[test]
fn a_corrupt_snapshot_falls_back_to_the_full_wal() {
    let ops = script();
    let bytes = written_wal("badsnap", &ops);
    // Garbage where the snapshot should be: recovery must ignore it and
    // replay the WAL from its open record.
    let recovered = recover_bytes("badsnapdir", &bytes, Some(b"definitely not a snapshot"));
    assert_eq!(recovered, fold(&ops, ops.len()).map(|s| s.rows));
}
