//! Property test crossing the persistence boundary: a random interleaving
//! of `add_entity` / `remove_entity` / `snapshot` / reopen-from-disk is
//! driven simultaneously against the WAL and an in-memory oracle, and at
//! every reopen — plus at the end — an engine rebuilt from the recovered
//! rows must agree with `discover_naive` on a batch group of the oracle's
//! rows, extending the incremental engine's own interleaving proptests
//! through a crash/restart cycle.

use dime_core::{
    discover_naive, GroupBuilder, IncrementalDime, Predicate, Rule, Schema, SimilarityFn,
};
use dime_store::wal::{recover, Recovery, SessionWal};
use dime_store::{FsyncPolicy, Row, SessionState, StoreStats, WalOp};
use dime_text::TokenizerKind;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dime-oracle-{}-{n}", std::process::id()))
}

fn schema() -> Schema {
    Schema::new([("Title", TokenizerKind::Words), ("Authors", TokenizerKind::List(','))])
}

fn rules() -> (Vec<Rule>, Vec<Rule>) {
    (
        vec![Rule::positive(vec![Predicate::new(1, SimilarityFn::Overlap, 2.0)])],
        vec![Rule::negative(vec![Predicate::new(1, SimilarityFn::Overlap, 0.0)])],
    )
}

/// Rebuilds an engine from recovered rows, the way `dime-serve` does.
fn engine_from_rows(rows: &[Row]) -> IncrementalDime {
    let (pos, neg) = rules();
    let persisted: Vec<(Vec<String>, Option<Vec<Option<u32>>>)> =
        rows.iter().map(|r| (r.values.clone(), r.nodes.clone())).collect();
    IncrementalDime::reopen(GroupBuilder::new(schema()).build(), pos, neg, &persisted)
}

/// One generated step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    Add { title: usize, authors: Vec<u32> },
    Remove { pick: usize },
    Snapshot,
    Reopen,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0usize..3, proptest::collection::vec(0u32..8, 0..4))
            .prop_map(|(title, authors)| Step::Add { title, authors }),
        2 => (0usize..16).prop_map(|pick| Step::Remove { pick }),
        1 => Just(Step::Snapshot),
        1 => Just(Step::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_persisted_interleaving_matches_the_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..20),
    ) {
        let dir = temp_dir();
        let stats = Arc::new(StoreStats::default());
        let mut wal =
            SessionWal::create(&dir, FsyncPolicy::Never, Arc::clone(&stats)).expect("create");
        wal.append(&WalOp::Open { doc: "{}".into(), rules: "opaque".into() }).expect("open");
        let mut state = SessionState::new("{}", "opaque");
        // The oracle: plain rows, batch-rebuilt for every comparison.
        let mut oracle: Vec<(String, String)> = Vec::new();

        for step in &steps {
            match step {
                Step::Add { title, authors } => {
                    let t = format!("t{title}");
                    let a = authors.iter().map(|x| format!("a{x}"))
                        .collect::<Vec<_>>().join(", ");
                    let op = WalOp::AddEntity { values: vec![t.clone(), a.clone()] };
                    wal.append(&op).expect("append");
                    state.apply(&op);
                    oracle.push((t, a));
                }
                Step::Remove { pick } => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let id = pick % oracle.len();
                    let op = WalOp::RemoveEntity { entity: id as u64 };
                    wal.append(&op).expect("append");
                    state.apply(&op);
                    oracle.remove(id);
                }
                Step::Snapshot => wal.checkpoint(&state).expect("checkpoint"),
                Step::Reopen => {
                    drop(wal);
                    let rec = match recover(&dir, FsyncPolicy::Never, Arc::clone(&stats))
                        .expect("recover")
                    {
                        Recovery::Live(r) => *r,
                        _ => panic!("an open session must recover live"),
                    };
                    // The recovered mirror must be the oracle's rows.
                    let got: Vec<(String, String)> = rec.state.rows.iter()
                        .map(|r| (r.values[0].clone(), r.values[1].clone())).collect();
                    prop_assert_eq!(&got, &oracle, "rows diverged across reopen");
                    wal = rec.wal;
                    state = rec.state;
                }
            }
        }

        // Final crash + recovery, then the engine-level comparison.
        drop(wal);
        let rec = match recover(&dir, FsyncPolicy::Never, stats).expect("final recover") {
            Recovery::Live(r) => *r,
            _ => panic!("an open session must recover live"),
        };
        let mut engine = engine_from_rows(&rec.state.rows);
        if !oracle.is_empty() {
            let mut b = GroupBuilder::new(schema());
            for (t, a) in &oracle {
                b.add_entity(&[t.as_str(), a.as_str()]);
            }
            let batch = b.build();
            let (pos, neg) = rules();
            prop_assert_eq!(engine.discovery(), discover_naive(&batch, &pos, &neg));
        } else {
            prop_assert_eq!(engine.len(), 0);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
