//! Durable persistence for discovery sessions: a per-session append-only
//! write-ahead log plus periodic snapshots, with crash recovery that
//! replays snapshot-then-tail and never aborts on a torn write.
//!
//! The crate is engine-agnostic and zero-dependency (std only): it stores
//! the session's group document and rule set as opaque strings and its
//! entity rows as attribute-value string vectors — exactly the inputs the
//! incremental engine consumes — so `dime-serve` can rebuild a
//! bit-identical `IncrementalDime` from what this crate returns.
//!
//! On disk, every session owns one directory under
//! `<data-dir>/sessions/<id>/`:
//!
//! | file       | contents                                              |
//! |------------|-------------------------------------------------------|
//! | `wal.log`  | 8-byte header, then CRC-framed operation records      |
//! | `snap.bin` | one CRC-framed snapshot covering a WAL prefix         |
//! | `snap.tmp` | in-flight snapshot; deleted on recovery               |
//!
//! Operations (`open` with the full group document and rules,
//! `add_entity`, `add_entity_with_nodes`, `remove_entity`, `close`) append
//! length-prefixed, CRC32-checksummed frames carrying a monotone sequence
//! number. A snapshot serializes the folded session state and the highest
//! sequence number it covers, is made durable via write-to-temp + fsync +
//! rename, and only then is the WAL truncated (compaction). A crash
//! between the rename and the truncation is safe: recovery skips WAL
//! records whose sequence number the snapshot already covers.
//!
//! Recovery ([`Store::recover_sessions`]) folds `snap.bin` (if any) and
//! the WAL tail into a [`SessionState`]. A torn or corrupted record —
//! short frame, bad CRC, undecodable payload — ends the replay *cleanly*:
//! the tail is truncated at the last complete record and the session
//! resumes from everything before it. No half-applied operation can
//! resurrect, because a record is either fully on disk (CRC verifies) or
//! ignored. A durable `close` record, or removal of the session
//! directory, means the session is gone and is never resurrected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod record;
pub mod store;
pub mod wal;

pub use frame::{crc32, read_frame, write_frame, FrameRead, FRAME_HEADER_BYTES, MAX_PAYLOAD_BYTES};
pub use record::{decode_record, encode_record, Row, SessionState, Snapshot, WalOp};
pub use store::{Store, StoreStats, StoreStatsSnapshot};
pub use wal::{RecoveredSession, Recovery, SessionWal, WalTap};

use std::path::PathBuf;
use std::time::Duration;

/// When appended WAL records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record — no acknowledged operation is
    /// ever lost, at the cost of one disk flush per operation.
    Always,
    /// `fsync` at most once per interval — bounds the loss window to the
    /// interval while amortizing the flush across a batch of appends.
    Interval(Duration),
    /// Never `fsync` explicitly — the OS page cache decides. Survives
    /// process crashes (the cache is kernel-owned) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, `interval` (the
    /// default 100 ms window), or `interval:<ms>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::default()),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval {ms:?} (want milliseconds)")),
                None => {
                    Err(format!("bad fsync policy {other:?} (want always|interval[:ms]|never)"))
                }
            },
        }
    }
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(100))
    }
}

/// Configuration of a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory; session state lives under `<data_dir>/sessions/`.
    pub data_dir: PathBuf,
    /// When appended records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Operations between snapshots (and the WAL compactions they
    /// enable); `0` disables snapshotting, leaving the WAL to grow.
    pub snapshot_every: usize,
}

impl StoreConfig {
    /// A config rooted at `data_dir` with the default fsync policy and
    /// snapshot cadence.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self { data_dir: data_dir.into(), fsync: FsyncPolicy::default(), snapshot_every: 256 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_every_spelling() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("interval").unwrap(), FsyncPolicy::default());
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("interval:abc").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn store_config_defaults() {
        let c = StoreConfig::new("/tmp/x");
        assert_eq!(c.fsync, FsyncPolicy::default());
        assert_eq!(c.snapshot_every, 256);
    }
}
