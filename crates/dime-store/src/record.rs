//! The binary vocabulary inside the frames: WAL operation records and
//! snapshots, plus the [`SessionState`] they fold into.
//!
//! A WAL record's payload is `[u64 seq LE][u8 tag][fields]`; tags:
//!
//! | tag | operation              | fields                              |
//! |-----|------------------------|-------------------------------------|
//! | 1   | `open`                 | doc string, rules string            |
//! | 2   | `add_entity`           | attribute values                    |
//! | 3   | `add_entity_with_nodes`| attribute values, ontology nodes    |
//! | 4   | `remove_entity`        | `u64` entity id                     |
//! | 5   | `close`                | —                                   |
//! | 6   | `set_rules`            | rules string                        |
//!
//! Strings are `u32` byte length + UTF-8; vectors are `u32` count +
//! items; optional nodes are a `u8` flag + `u32`. Everything is
//! little-endian. Decoding is total: any out-of-bounds length or unknown
//! tag is a [`DecodeError`], never a panic, so a CRC-valid but
//! wrong-version record degrades into a clean truncation upstream.

use std::fmt;

/// A snapshot payload's leading magic ("DSNP").
const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"DSNP");
/// Snapshot format version.
const SNAPSHOT_VERSION: u32 = 1;
/// Sanity cap on decoded collection lengths; a corrupt count must not
/// drive a huge allocation before the bounds checks catch it.
const MAX_ITEMS: u32 = 1 << 20;

/// One persisted entity row: attribute values in schema order, plus the
/// explicit ontology nodes when the entity was added with them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Attribute values in schema order.
    pub values: Vec<String>,
    /// Explicit ontology node ids, when supplied at insertion.
    pub nodes: Option<Vec<Option<u32>>>,
}

/// One logged session operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Session opened: the group document (entities stripped — initial
    /// rows are logged individually) and the rule set, both opaque here.
    Open {
        /// The group document as a JSON string, without entities.
        doc: String,
        /// The rule DSL text.
        rules: String,
    },
    /// An entity appended with auto-mapped ontology nodes.
    AddEntity {
        /// Attribute values in schema order.
        values: Vec<String>,
    },
    /// An entity appended with explicit ontology nodes.
    AddEntityWithNodes {
        /// Attribute values in schema order.
        values: Vec<String>,
        /// One optional node id per attribute.
        nodes: Vec<Option<u32>>,
    },
    /// An entity removed by id (ids compact on removal, mirroring the
    /// engine).
    RemoveEntity {
        /// The entity id at removal time.
        entity: u64,
    },
    /// Session closed; nothing after this record may resurrect it.
    Close,
    /// The session's whole rule set replaced (a live rulespec install or
    /// ablate). Carries the full new set in the simple rule DSL — the
    /// format `open` uses — so recovery replays it with the same parser.
    SetRules {
        /// The complete replacement rule set as rule-DSL text.
        rules: String,
    },
}

/// A decoding failure: torn, corrupt, or wrong-version bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(&'static str);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undecodable record: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// --- primitive encoders -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_values(out: &mut Vec<u8>, values: &[String]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_str(out, v);
    }
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[Option<u32>]) {
    put_u32(out, nodes.len() as u32);
    for n in nodes {
        match n {
            Some(id) => {
                out.push(1);
                put_u32(out, *id);
            }
            None => out.push(0),
        }
    }
}

// --- primitive decoders -------------------------------------------------

/// A bounds-checked reading position over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or(DecodeError("record shorter than its fields"))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.take(1)?.first().copied().ok_or(DecodeError("record shorter than its fields"))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes =
            self.take(4)?.try_into().map_err(|_| DecodeError("record shorter than its fields"))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes =
            self.take(8)?.try_into().map_err(|_| DecodeError("record shorter than its fields"))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn count(&mut self) -> Result<u32, DecodeError> {
        let n = self.u32()?;
        if n > MAX_ITEMS {
            return Err(DecodeError("collection count beyond the sanity cap"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("string is not UTF-8"))
    }

    fn values(&mut self) -> Result<Vec<String>, DecodeError> {
        let n = self.count()?;
        (0..n).map(|_| self.string()).collect()
    }

    fn nodes(&mut self) -> Result<Vec<Option<u32>>, DecodeError> {
        let n = self.count()?;
        (0..n)
            .map(|_| match self.u8()? {
                0 => Ok(None),
                1 => Ok(Some(self.u32()?)),
                _ => Err(DecodeError("bad option flag")),
            })
            .collect()
    }

    fn finished(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError("trailing bytes after the record"))
        }
    }
}

// --- WAL records --------------------------------------------------------

/// Encodes one WAL record payload: sequence number, tag, fields.
pub fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, seq);
    match op {
        WalOp::Open { doc, rules } => {
            out.push(1);
            put_str(&mut out, doc);
            put_str(&mut out, rules);
        }
        WalOp::AddEntity { values } => {
            out.push(2);
            put_values(&mut out, values);
        }
        WalOp::AddEntityWithNodes { values, nodes } => {
            out.push(3);
            put_values(&mut out, values);
            put_nodes(&mut out, nodes);
        }
        WalOp::RemoveEntity { entity } => {
            out.push(4);
            put_u64(&mut out, *entity);
        }
        WalOp::Close => out.push(5),
        WalOp::SetRules { rules } => {
            out.push(6);
            put_str(&mut out, rules);
        }
    }
    out
}

/// Decodes one WAL record payload back into `(seq, op)`.
pub fn decode_record(payload: &[u8]) -> Result<(u64, WalOp), DecodeError> {
    let mut c = Cursor::new(payload);
    let seq = c.u64()?;
    let op = match c.u8()? {
        1 => WalOp::Open { doc: c.string()?, rules: c.string()? },
        2 => WalOp::AddEntity { values: c.values()? },
        3 => WalOp::AddEntityWithNodes { values: c.values()?, nodes: c.nodes()? },
        4 => WalOp::RemoveEntity { entity: c.u64()? },
        5 => WalOp::Close,
        6 => WalOp::SetRules { rules: c.string()? },
        _ => return Err(DecodeError("unknown operation tag")),
    };
    c.finished()?;
    Ok((seq, op))
}

// --- session state & snapshots ------------------------------------------

/// The folded state of one session: the opaque group document and rules
/// from `open`, plus the surviving rows in engine id order. Replaying
/// `rows` into a fresh engine reproduces the pre-crash discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    /// The group document (entities stripped) as a JSON string.
    pub doc: String,
    /// The rule DSL text.
    pub rules: String,
    /// Surviving rows, index = engine entity id.
    pub rows: Vec<Row>,
}

impl SessionState {
    /// A freshly opened session with no rows.
    pub fn new(doc: impl Into<String>, rules: impl Into<String>) -> Self {
        Self { doc: doc.into(), rules: rules.into(), rows: Vec::new() }
    }

    /// Applies one add/remove operation to the row mirror. Returns
    /// `false` (and changes nothing) for an out-of-range removal or a
    /// non-row operation — replay treats that as corruption-adjacent and
    /// stops cleanly rather than diverging.
    pub fn apply(&mut self, op: &WalOp) -> bool {
        match op {
            WalOp::AddEntity { values } => {
                self.rows.push(Row { values: values.clone(), nodes: None });
                true
            }
            WalOp::AddEntityWithNodes { values, nodes } => {
                self.rows.push(Row { values: values.clone(), nodes: Some(nodes.clone()) });
                true
            }
            WalOp::RemoveEntity { entity } => {
                let id = *entity as usize;
                if id < self.rows.len() {
                    self.rows.remove(id);
                    true
                } else {
                    false
                }
            }
            WalOp::SetRules { rules } => {
                self.rules = rules.clone();
                true
            }
            WalOp::Open { .. } | WalOp::Close => false,
        }
    }
}

/// A durable checkpoint: the session state plus the highest WAL sequence
/// number it covers. Recovery skips WAL records at or below `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Highest sequence number folded into this snapshot.
    pub seq: u64,
    /// The folded state.
    pub state: SessionState,
}

/// Encodes a snapshot payload (to be wrapped in one frame).
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u32(&mut out, SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, snap.seq);
    put_str(&mut out, &snap.state.doc);
    put_str(&mut out, &snap.state.rules);
    put_u32(&mut out, snap.state.rows.len() as u32);
    for row in &snap.state.rows {
        put_values(&mut out, &row.values);
        match &row.nodes {
            Some(nodes) => {
                out.push(1);
                put_nodes(&mut out, nodes);
            }
            None => out.push(0),
        }
    }
    out
}

/// Decodes a snapshot payload.
pub fn decode_snapshot(payload: &[u8]) -> Result<Snapshot, DecodeError> {
    let mut c = Cursor::new(payload);
    if c.u32()? != SNAPSHOT_MAGIC {
        return Err(DecodeError("bad snapshot magic"));
    }
    if c.u32()? != SNAPSHOT_VERSION {
        return Err(DecodeError("unsupported snapshot version"));
    }
    let seq = c.u64()?;
    let doc = c.string()?;
    let rules = c.string()?;
    let n = c.count()?;
    let mut rows = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        let values = c.values()?;
        let nodes = match c.u8()? {
            0 => None,
            1 => Some(c.nodes()?),
            _ => return Err(DecodeError("bad option flag")),
        };
        rows.push(Row { values, nodes });
    }
    c.finished()?;
    Ok(Snapshot { seq, state: SessionState { doc, rules, rows } })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Open { doc: "{\"schema\": []}".into(), rules: "positive: x".into() },
            WalOp::AddEntity { values: vec!["t".into(), "ann, bob".into()] },
            WalOp::AddEntityWithNodes {
                values: vec!["u".into(), "carl".into()],
                nodes: vec![None, Some(7)],
            },
            WalOp::RemoveEntity { entity: 0 },
            WalOp::Close,
            WalOp::SetRules { rules: "positive: y\nnegative: z".into() },
        ]
    }

    #[test]
    fn every_op_round_trips() {
        for (i, op) in sample_ops().iter().enumerate() {
            let payload = encode_record(i as u64 + 1, op);
            let (seq, back) = decode_record(&payload).expect("decode");
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(&back, op);
        }
    }

    #[test]
    fn truncated_payloads_never_panic() {
        for op in sample_ops() {
            let payload = encode_record(3, &op);
            for cut in 0..payload.len() {
                assert!(decode_record(&payload[..cut]).is_err(), "cut {cut} of {op:?}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_record(1, &WalOp::Close);
        payload.push(0);
        assert!(decode_record(&payload).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        payload.push(99);
        assert!(decode_record(&payload).is_err());
    }

    #[test]
    fn state_folds_adds_and_removes() {
        let mut s = SessionState::new("{}", "r");
        assert!(s.apply(&WalOp::AddEntity { values: vec!["a".into()] }));
        assert!(
            s.apply(&WalOp::AddEntityWithNodes { values: vec!["b".into()], nodes: vec![Some(3)] })
        );
        assert!(s.apply(&WalOp::RemoveEntity { entity: 0 }));
        assert_eq!(s.rows.len(), 1);
        assert_eq!(s.rows[0].values, vec!["b".to_string()]);
        assert_eq!(s.rows[0].nodes, Some(vec![Some(3)]));
        // Out-of-range removal is refused, not panicked on.
        assert!(!s.apply(&WalOp::RemoveEntity { entity: 9 }));
        assert_eq!(s.rows.len(), 1);
        // A rule install replaces the rule text and keeps the rows.
        assert!(s.apply(&WalOp::SetRules { rules: "positive: q\nnegative: w".into() }));
        assert_eq!(s.rules, "positive: q\nnegative: w");
        assert_eq!(s.rows.len(), 1);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut state = SessionState::new("{\"schema\": [1, 2]}", "positive: y");
        state.apply(&WalOp::AddEntity { values: vec!["x".into(), "y".into()] });
        state.apply(&WalOp::AddEntityWithNodes {
            values: vec!["z".into(), "w".into()],
            nodes: vec![Some(1), None],
        });
        let snap = Snapshot { seq: 42, state };
        let payload = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&payload).expect("decode"), snap);
        for cut in 0..payload.len() {
            assert!(decode_snapshot(&payload[..cut]).is_err(), "cut {cut}");
        }
    }
}
