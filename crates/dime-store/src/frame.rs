//! The on-disk frame: `[u32 payload_len LE][u32 crc32(payload) LE][payload]`.
//!
//! Frames are the unit of durability. A reader accepts a frame only when
//! the full payload is present *and* its CRC-32 verifies, so a torn write
//! (partial length, partial payload) or a flipped byte is detected as
//! [`FrameRead::Corrupt`] rather than silently mis-parsed — the WAL
//! recovery path then truncates at the last complete frame.

use std::io::{self, Write};

/// Hard sanity cap on one frame's payload. A corrupted length field must
/// not make the reader treat gigabytes of garbage as one frame.
pub const MAX_PAYLOAD_BYTES: u32 = 64 << 20;

/// Bytes of the `[len][crc]` prefix.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Reflected polynomial of CRC-32 (IEEE 802.3), the checksum of zip/png.
const CRC_POLY: u32 = 0xEDB8_8320;

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes` — table-driven, no external crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = !0u32;
    for &b in bytes {
        // dime-check: allow(panic-in-service) — index is masked to 0..=255 and the table holds 256 entries
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Outcome of decoding one frame from the front of a byte slice.
#[derive(Debug)]
pub enum FrameRead<'a> {
    /// A complete frame whose checksum verified; `consumed` bytes of the
    /// input (header + payload) belong to it.
    Ok {
        /// The verified payload.
        payload: &'a [u8],
        /// Total bytes of the frame, header included.
        consumed: usize,
    },
    /// Clean end of input: zero bytes remain.
    End,
    /// The remaining bytes are not a complete, checksummed frame — a torn
    /// or corrupted tail.
    Corrupt,
}

/// Reads the little-endian `u32` at `at`, `None` past the end.
fn le_u32(buf: &[u8], at: usize) -> Option<u32> {
    let bytes = buf.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

/// Decodes the frame at the front of `buf`.
pub fn read_frame(buf: &[u8]) -> FrameRead<'_> {
    if buf.is_empty() {
        return FrameRead::End;
    }
    let (Some(len), Some(crc)) = (le_u32(buf, 0), le_u32(buf, 4)) else {
        return FrameRead::Corrupt;
    };
    if len > MAX_PAYLOAD_BYTES {
        return FrameRead::Corrupt;
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    let Some(payload) = buf.get(FRAME_HEADER_BYTES..total) else {
        return FrameRead::Corrupt;
    };
    if crc32(payload) != crc {
        return FrameRead::Corrupt;
    }
    FrameRead::Ok { payload, consumed: total }
}

/// Writes one frame, returning the bytes written (header + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<usize> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_PAYLOAD_BYTES)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(FRAME_HEADER_BYTES + payload.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(n, buf.len());
        match read_frame(&buf) {
            FrameRead::Ok { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, buf.len());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_a_clean_end() {
        assert!(matches!(read_frame(&[]), FrameRead::End));
    }

    #[test]
    fn every_truncation_is_corrupt_not_a_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"some payload").unwrap();
        for cut in 1..buf.len() {
            assert!(
                matches!(read_frame(&buf[..cut]), FrameRead::Corrupt),
                "cut at {cut} must read as corrupt"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload under test").unwrap();
        for i in 0..buf.len() {
            let mut dup = buf.clone();
            dup[i] ^= 0x40;
            // A flipped length byte may also make the frame read as
            // torn; either way it must never verify.
            assert!(
                matches!(read_frame(&dup), FrameRead::Corrupt),
                "flip at {i} must read as corrupt"
            );
        }
    }

    #[test]
    fn absurd_length_fields_are_rejected() {
        let mut buf = (MAX_PAYLOAD_BYTES + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 12]);
        assert!(matches!(read_frame(&buf), FrameRead::Corrupt));
    }
}
