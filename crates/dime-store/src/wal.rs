//! One session's write-ahead log: append, fsync policy, checkpointing
//! (snapshot + WAL compaction), and crash recovery of the directory.
//!
//! Durability ordering of a checkpoint (the invariant that makes every
//! crash window safe):
//!
//! 1. the snapshot is written to `snap.tmp` and fsynced;
//! 2. `snap.tmp` is renamed over `snap.bin` (atomic on POSIX) and the
//!    directory is fsynced;
//! 3. only then is `wal.log` truncated back to its header.
//!
//! A crash before (2) leaves the old snapshot and the full WAL — recovery
//! replays as if no checkpoint happened. A crash between (2) and (3)
//! leaves the new snapshot *and* the records it covers — recovery skips
//! them by sequence number, so nothing double-applies.

use crate::frame::{read_frame, write_frame, FrameRead};
use crate::record::{
    decode_record, decode_snapshot, encode_record, encode_snapshot, SessionState, Snapshot, WalOp,
};
use crate::store::StoreStats;
use crate::FsyncPolicy;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// WAL file name inside a session directory.
pub const WAL_FILE: &str = "wal.log";
/// Durable snapshot file name.
pub const SNAPSHOT_FILE: &str = "snap.bin";
/// In-flight snapshot; deleted on recovery.
pub const SNAPSHOT_TMP_FILE: &str = "snap.tmp";

/// The WAL header: magic + format version.
const WAL_MAGIC: [u8; 4] = *b"DWAL";
const WAL_VERSION: u32 = 1;
const WAL_HEADER_BYTES: u64 = 8;

fn wal_header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&WAL_MAGIC); // dime-check: allow(panic-in-service) — constant range into a fixed 8-byte array
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes()); // dime-check: allow(panic-in-service) — constant range into a fixed 8-byte array
    h
}

/// Best-effort directory fsync, so a rename/create is durable. Some
/// filesystems refuse to fsync directories; that is a weaker guarantee,
/// not an error.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Observer of committed WAL records — the replication hook.
///
/// The tap sees each record *after* it reached the durability the fsync
/// policy promises, as the exact encoded `[seq|tag|fields]` payload that
/// went into the frame, so a receiver can re-frame it verbatim with
/// [`SessionWal::append_raw`] and end up with a byte-equivalent log.
pub trait WalTap: Send + Sync {
    /// Called once per committed record. An error propagates out of the
    /// append — callers with a fail-open policy (dime-serve) mark the
    /// session's persistence broken rather than failing the request.
    fn record_committed(&self, session: u64, payload: &[u8]) -> io::Result<()>;
}

/// An open, appendable per-session WAL.
pub struct SessionWal {
    dir: PathBuf,
    file: File,
    policy: FsyncPolicy,
    next_seq: u64,
    last_sync: Instant,
    stats: Arc<StoreStats>,
    tap: Option<(u64, Arc<dyn WalTap>)>,
}

impl SessionWal {
    /// Creates a fresh WAL in `dir` (the directory is created; any stale
    /// contents are removed first) and makes the empty log durable.
    pub fn create(dir: &Path, policy: FsyncPolicy, stats: Arc<StoreStats>) -> io::Result<Self> {
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::create_dir_all(dir)?;
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(true).open(dir.join(WAL_FILE))?;
        file.write_all(&wal_header())?;
        file.sync_all()?;
        sync_dir(dir);
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            policy,
            next_seq: 1,
            // dime-check: allow(wall-clock-in-core) — paces the IntervalMs fsync policy; durability timing, not discovery state
            last_sync: Instant::now(),
            stats,
            tap: None,
        })
    }

    /// Installs a replication tap. `session` is the id the tap reports;
    /// every record appended from now on is offered to it post-commit.
    /// Install before the `open` record goes in so the whole log streams.
    pub fn set_tap(&mut self, session: u64, tap: Arc<dyn WalTap>) {
        self.tap = Some((session, tap));
    }

    /// The session directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The shared counters this WAL reports into.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.stats
    }

    /// Appends one operation record, returning its sequence number. The
    /// record reaches stable storage according to the fsync policy.
    pub fn append(&mut self, op: &WalOp) -> io::Result<u64> {
        let seq = self.next_seq;
        let payload = encode_record(seq, op);
        let written = write_frame(&mut self.file, &payload)?;
        self.next_seq += 1;
        self.stats.add_append(written as u64);
        self.maybe_sync()?;
        if let Some((session, tap)) = &self.tap {
            tap.record_committed(*session, &payload)?;
        }
        Ok(seq)
    }

    /// Appends a run of operation records under a single fsync decision,
    /// returning the sequence number of the first. Each record is framed
    /// and sequenced exactly as [`SessionWal::append`] would have framed
    /// it — a batched log is byte-identical to an op-at-a-time log — but
    /// the fsync policy is consulted once for the whole run, so an
    /// `Always` policy pays one `sync_data` per batch instead of one per
    /// record. The replication tap is offered every payload only after
    /// that durability point, preserving its post-commit contract.
    ///
    /// An empty batch is a no-op returning the next sequence number.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> io::Result<u64> {
        let first = self.next_seq;
        if ops.is_empty() {
            return Ok(first);
        }
        let mut payloads = Vec::with_capacity(ops.len());
        for op in ops {
            let payload = encode_record(self.next_seq, op);
            let written = write_frame(&mut self.file, &payload)?;
            self.next_seq += 1;
            self.stats.add_append(written as u64);
            payloads.push(payload);
        }
        self.maybe_sync()?;
        if let Some((session, tap)) = &self.tap {
            for payload in &payloads {
                tap.record_committed(*session, payload)?;
            }
        }
        Ok(first)
    }

    /// Appends an already-encoded record verbatim — the follower side of
    /// replication. The payload is decoded first so a corrupt stream is
    /// rejected instead of poisoning the log, and the WAL's own sequence
    /// counter is advanced to follow the primary's numbering. Durability
    /// follows the fsync policy, exactly as for [`SessionWal::append`].
    pub fn append_raw(&mut self, payload: &[u8]) -> io::Result<u64> {
        let (seq, _op) = decode_record(payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad record: {e}")))?;
        let written = write_frame(&mut self.file, payload)?;
        self.next_seq = seq + 1;
        self.stats.add_append(written as u64);
        self.maybe_sync()?;
        Ok(seq)
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Forces appended records to stable storage now.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        // dime-check: allow(wall-clock-in-core) — paces the IntervalMs fsync policy; durability timing, not discovery state
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Writes a durable snapshot of `state` covering every record
    /// appended so far, then compacts: the WAL is truncated back to its
    /// header. See the module docs for the crash-safety ordering.
    pub fn checkpoint(&mut self, state: &SessionState) -> io::Result<()> {
        let snap = Snapshot { seq: self.next_seq - 1, state: state.clone() };
        let payload = encode_snapshot(&snap);
        let tmp = self.dir.join(SNAPSHOT_TMP_FILE);
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            write_frame(&mut f, &payload)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        sync_dir(&self.dir);
        self.stats.bump_snapshots();
        // The snapshot is durable; the covered records may go.
        self.file.set_len(WAL_HEADER_BYTES)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_BYTES))?;
        self.stats.bump_compactions();
        Ok(())
    }

    /// Appends a durable `close` record. The caller removes the session
    /// directory afterwards; should that be interrupted, recovery sees
    /// the record and finishes the removal instead of resurrecting the
    /// session.
    pub fn close(&mut self) -> io::Result<()> {
        self.append(&WalOp::Close)?;
        self.sync()
    }
}

/// A session restored from disk: its WAL reopened for appending and the
/// folded state to rebuild an engine from.
pub struct RecoveredSession {
    /// The reopened WAL, positioned after the last durable record.
    pub wal: SessionWal,
    /// The folded session state (doc, rules, surviving rows).
    pub state: SessionState,
}

/// Outcome of recovering one session directory.
pub enum Recovery {
    /// The session is live again.
    Live(Box<RecoveredSession>),
    /// The log ends in a durable `close`: the session must not come back
    /// (the caller removes the directory).
    Closed,
    /// Nothing usable survived — no snapshot and no readable `open`
    /// record. The caller discards the directory.
    Unrecoverable,
}

/// Recovers one session directory: deletes any in-flight snapshot, folds
/// `snap.bin` and the WAL tail, truncates a torn/corrupt tail at the last
/// complete record, and reopens the WAL for appending.
///
/// Never panics on disk corruption; IO errors (permissions, vanished
/// files) surface as `Err`.
pub fn recover(dir: &Path, policy: FsyncPolicy, stats: Arc<StoreStats>) -> io::Result<Recovery> {
    match fs::remove_file(dir.join(SNAPSHOT_TMP_FILE)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
    let wal_path = dir.join(WAL_FILE);
    let bytes = match fs::read(&wal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    // Scan the record region, stopping at the first torn/corrupt frame.
    let header_ok = bytes.get(..WAL_HEADER_BYTES as usize) == Some(wal_header().as_slice());
    let mut records: Vec<(u64, WalOp)> = Vec::new();
    let mut keep = if header_ok { WAL_HEADER_BYTES as usize } else { 0 };
    if header_ok {
        let mut at = keep;
        loop {
            match read_frame(bytes.get(at..).unwrap_or(&[])) {
                FrameRead::End => break,
                FrameRead::Corrupt => {
                    stats.bump_truncated();
                    break;
                }
                FrameRead::Ok { payload, consumed } => match decode_record(payload) {
                    Ok(rec) => {
                        at += consumed;
                        keep = at;
                        records.push(rec);
                    }
                    Err(_) => {
                        // CRC-valid but unintelligible: treat like a torn
                        // tail and resume from the records before it.
                        stats.bump_truncated();
                        break;
                    }
                },
            }
        }
    } else if !bytes.is_empty() {
        stats.bump_truncated();
    }

    // Fold snapshot-then-tail.
    let covered = snapshot.as_ref().map_or(0, |s| s.seq);
    let mut state = snapshot.map(|s| s.state);
    let mut max_seq = covered;
    let mut closed = false;
    for (seq, op) in &records {
        if *seq <= covered {
            continue; // checkpoint crashed between rename and truncate
        }
        max_seq = max_seq.max(*seq);
        match op {
            WalOp::Open { doc, rules } => {
                state = Some(SessionState::new(doc.clone(), rules.clone()))
            }
            WalOp::Close => {
                closed = true;
                break;
            }
            other => match state.as_mut() {
                Some(s) => {
                    s.apply(other);
                }
                // A mutation with no preceding open and no snapshot:
                // the prefix that carried the open is gone.
                None => return Ok(Recovery::Unrecoverable),
            },
        }
    }
    if closed {
        return Ok(Recovery::Closed);
    }
    let Some(state) = state else {
        return Ok(Recovery::Unrecoverable);
    };

    // Truncate the torn tail (or rewrite a missing/bad header) and
    // reopen for appending.
    let mut file = OpenOptions::new().create(true).write(true).open(&wal_path)?;
    if keep < WAL_HEADER_BYTES as usize {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&wal_header())?;
        file.sync_all()?;
    } else if (keep as u64) < bytes.len() as u64 {
        file.set_len(keep as u64)?;
        file.sync_all()?;
    }
    file.seek(SeekFrom::End(0))?;

    stats.bump_recovered();
    let wal = SessionWal {
        dir: dir.to_path_buf(),
        file,
        policy,
        next_seq: max_seq + 1,
        // dime-check: allow(wall-clock-in-core) — paces the IntervalMs fsync policy; durability timing, not discovery state
        last_sync: Instant::now(),
        stats,
        tap: None,
    };
    Ok(Recovery::Live(Box::new(RecoveredSession { wal, state })))
}

fn read_snapshot(path: &Path) -> io::Result<Option<Snapshot>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    match read_frame(&bytes) {
        FrameRead::Ok { payload, .. } => Ok(decode_snapshot(payload).ok()),
        // A torn or corrupt snapshot is treated as absent: the WAL may
        // still carry the full history from its open record.
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dime-wal-{tag}-{}-{n}", std::process::id()))
    }

    fn open_op() -> WalOp {
        WalOp::Open { doc: "{\"schema\": [\"A\"]}".into(), rules: "positive: x".into() }
    }

    fn add_op(v: &str) -> WalOp {
        WalOp::AddEntity { values: vec![v.to_string()] }
    }

    fn recover_live(dir: &Path) -> RecoveredSession {
        match recover(dir, FsyncPolicy::Never, Arc::new(StoreStats::default())).expect("recover") {
            Recovery::Live(r) => *r,
            Recovery::Closed => panic!("unexpected closed"),
            Recovery::Unrecoverable => panic!("unexpected unrecoverable"),
        }
    }

    #[test]
    fn append_then_recover_round_trips() {
        let dir = temp_dir("roundtrip");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Always, Arc::clone(&stats)).unwrap();
        wal.append(&open_op()).unwrap();
        wal.append(&add_op("a")).unwrap();
        wal.append(&add_op("b")).unwrap();
        wal.append(&WalOp::RemoveEntity { entity: 0 }).unwrap();
        drop(wal);

        let rec = recover_live(&dir);
        assert_eq!(rec.state.rows.len(), 1);
        assert_eq!(rec.state.rows[0].values, vec!["b".to_string()]);
        assert_eq!(rec.wal.next_seq(), 5);
        assert!(stats.snapshot().records_appended >= 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_wal_continues_the_sequence() {
        let dir = temp_dir("continue");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, stats).unwrap();
        wal.append(&open_op()).unwrap();
        wal.append(&add_op("a")).unwrap();
        drop(wal);

        let mut rec = recover_live(&dir);
        rec.wal.append(&add_op("b")).unwrap();
        drop(rec);

        let rec = recover_live(&dir);
        assert_eq!(
            rec.state.rows.iter().map(|r| r.values[0].as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_recovers() {
        let dir = temp_dir("checkpoint");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, Arc::clone(&stats)).unwrap();
        let mut state = SessionState::new("{}", "r");
        wal.append(&open_op()).unwrap();
        for v in ["a", "b", "c"] {
            let op = add_op(v);
            wal.append(&op).unwrap();
            state.apply(&op);
        }
        wal.checkpoint(&state).unwrap();
        assert_eq!(
            fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
            WAL_HEADER_BYTES,
            "compaction must truncate the WAL to its header"
        );
        // Post-checkpoint tail.
        let op = add_op("d");
        wal.append(&op).unwrap();
        state.apply(&op);
        drop(wal);

        let rec = recover_live(&dir);
        assert_eq!(rec.state.rows, state.rows);
        let s = stats.snapshot();
        assert_eq!(s.snapshots_written, 1);
        assert_eq!(s.compactions, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_snapshot_rename_and_truncate_does_not_double_apply() {
        let dir = temp_dir("crashwindow");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, stats).unwrap();
        let mut state = SessionState::new("{}", "r");
        wal.append(&open_op()).unwrap();
        for v in ["a", "b"] {
            let op = add_op(v);
            wal.append(&op).unwrap();
            state.apply(&op);
        }
        // Save the pre-checkpoint WAL, checkpoint, then put the old WAL
        // back — simulating a crash after the rename, before set_len.
        let saved = fs::read(dir.join(WAL_FILE)).unwrap();
        wal.checkpoint(&state).unwrap();
        drop(wal);
        fs::write(dir.join(WAL_FILE), &saved).unwrap();

        let rec = recover_live(&dir);
        assert_eq!(rec.state.rows.len(), 2, "covered records must not re-apply");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_snapshot_tmp_is_discarded() {
        let dir = temp_dir("torntmp");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, stats).unwrap();
        wal.append(&open_op()).unwrap();
        wal.append(&add_op("a")).unwrap();
        drop(wal);
        fs::write(dir.join(SNAPSHOT_TMP_FILE), b"half a snapsh").unwrap();

        let rec = recover_live(&dir);
        assert_eq!(rec.state.rows.len(), 1);
        assert!(!dir.join(SNAPSHOT_TMP_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn close_record_ends_the_session() {
        let dir = temp_dir("close");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, Arc::clone(&stats)).unwrap();
        wal.append(&open_op()).unwrap();
        wal.close().unwrap();
        drop(wal);
        match recover(&dir, FsyncPolicy::Never, stats).unwrap() {
            Recovery::Closed => {}
            _ => panic!("a closed session must not come back"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_batch_is_byte_identical_to_sequential_appends() {
        let batch_dir = temp_dir("batch");
        let seq_dir = temp_dir("batch-seq");
        let stats = Arc::new(StoreStats::default());
        let ops =
            [open_op(), add_op("a"), add_op("b"), WalOp::RemoveEntity { entity: 0 }, add_op("c")];

        let mut batched =
            SessionWal::create(&batch_dir, FsyncPolicy::Always, Arc::clone(&stats)).unwrap();
        batched.append(&ops[0]).unwrap();
        let first = batched.append_batch(&ops[1..]).unwrap();
        assert_eq!(first, 2, "append_batch returns the first sequence of the run");
        assert_eq!(batched.next_seq(), 6);
        assert_eq!(batched.append_batch(&[]).unwrap(), 6, "empty batch is a no-op");
        drop(batched);

        let mut sequential =
            SessionWal::create(&seq_dir, FsyncPolicy::Always, Arc::clone(&stats)).unwrap();
        for op in &ops {
            sequential.append(op).unwrap();
        }
        drop(sequential);

        assert_eq!(
            fs::read(batch_dir.join(WAL_FILE)).unwrap(),
            fs::read(seq_dir.join(WAL_FILE)).unwrap(),
            "a batched log must be byte-identical to an op-at-a-time log"
        );
        let rec = recover_live(&batch_dir);
        assert_eq!(
            rec.state.rows.iter().map(|r| r.values[0].as_str()).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        fs::remove_dir_all(&batch_dir).unwrap();
        fs::remove_dir_all(&seq_dir).unwrap();
    }

    /// A tap that mirrors every payload into a second WAL via
    /// `append_raw` — replication in miniature.
    struct MirrorTap {
        follower: std::sync::Mutex<SessionWal>,
        seen: std::sync::Mutex<Vec<u64>>,
    }

    impl WalTap for MirrorTap {
        fn record_committed(&self, _session: u64, payload: &[u8]) -> io::Result<()> {
            let seq = self.follower.lock().expect("follower lock poisoned").append_raw(payload)?;
            self.seen.lock().expect("seen lock poisoned").push(seq);
            Ok(())
        }
    }

    #[test]
    fn tap_stream_replayed_raw_recovers_identically() {
        let primary_dir = temp_dir("tap-primary");
        let follower_dir = temp_dir("tap-follower");
        let stats = Arc::new(StoreStats::default());
        let follower =
            SessionWal::create(&follower_dir, FsyncPolicy::Never, Arc::clone(&stats)).unwrap();
        let tap = Arc::new(MirrorTap {
            follower: std::sync::Mutex::new(follower),
            seen: std::sync::Mutex::new(Vec::new()),
        });

        let mut wal =
            SessionWal::create(&primary_dir, FsyncPolicy::Never, Arc::clone(&stats)).unwrap();
        wal.set_tap(7, Arc::clone(&tap) as Arc<dyn WalTap>);
        wal.append(&open_op()).unwrap();
        wal.append(&add_op("a")).unwrap();
        wal.append(&add_op("b")).unwrap();
        wal.append(&WalOp::RemoveEntity { entity: 0 }).unwrap();
        drop(wal);

        assert_eq!(*tap.seen.lock().unwrap(), vec![1, 2, 3, 4], "acked seqs follow the primary");
        // Byte-for-byte identical logs, and an identical fold.
        assert_eq!(
            fs::read(primary_dir.join(WAL_FILE)).unwrap(),
            fs::read(follower_dir.join(WAL_FILE)).unwrap()
        );
        let p = recover_live(&primary_dir);
        let f = recover_live(&follower_dir);
        assert_eq!(p.state.rows, f.state.rows);
        assert_eq!(p.wal.next_seq(), f.wal.next_seq());
        fs::remove_dir_all(&primary_dir).unwrap();
        fs::remove_dir_all(&follower_dir).unwrap();
    }

    struct FailingTap;

    impl WalTap for FailingTap {
        fn record_committed(&self, _session: u64, _payload: &[u8]) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "follower gone"))
        }
    }

    #[test]
    fn tap_failure_surfaces_as_append_error_after_local_commit() {
        let dir = temp_dir("tap-fail");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, stats).unwrap();
        wal.set_tap(1, Arc::new(FailingTap));
        assert!(wal.append(&open_op()).is_err(), "tap errors must propagate");
        // The local append still happened — the record is on disk.
        drop(wal);
        let rec = recover_live(&dir);
        assert_eq!(rec.wal.next_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_raw_rejects_garbage() {
        let dir = temp_dir("rawbad");
        let stats = Arc::new(StoreStats::default());
        let mut wal = SessionWal::create(&dir, FsyncPolicy::Never, stats).unwrap();
        assert!(wal.append_raw(b"definitely not a record").is_err());
        assert_eq!(wal.next_seq(), 1, "a rejected payload must not advance the sequence");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_garbage_directories_are_unrecoverable_not_fatal() {
        let dir = temp_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(WAL_FILE), b"not a wal at all").unwrap();
        let stats = Arc::new(StoreStats::default());
        match recover(&dir, FsyncPolicy::Never, stats).unwrap() {
            Recovery::Unrecoverable => {}
            _ => panic!("garbage must be unrecoverable"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
