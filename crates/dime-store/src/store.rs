//! The store root: one directory of per-session WALs, shared counters,
//! and whole-store recovery.

use crate::wal::{self, RecoveredSession, Recovery, SessionWal};
use crate::StoreConfig;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-free counters shared by every [`SessionWal`] of a store —
/// surfaced by `dime-serve`'s global `stats` operation.
#[derive(Debug, Default)]
pub struct StoreStats {
    records_appended: AtomicU64,
    bytes_appended: AtomicU64,
    snapshots_written: AtomicU64,
    compactions: AtomicU64,
    sessions_recovered: AtomicU64,
    tails_truncated: AtomicU64,
    wal_failures: AtomicU64,
}

/// A plain-value snapshot of [`StoreStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStatsSnapshot {
    /// WAL records appended.
    pub records_appended: u64,
    /// Bytes appended (frame headers included).
    pub bytes_appended: u64,
    /// Snapshots made durable.
    pub snapshots_written: u64,
    /// WAL compactions performed.
    pub compactions: u64,
    /// Sessions restored by recovery.
    pub sessions_recovered: u64,
    /// Torn or corrupt WAL tails truncated during recovery.
    pub tails_truncated: u64,
    /// Persistence operations that failed with an IO error (the session
    /// keeps serving from memory; see `dime-serve`).
    pub wal_failures: u64,
}

impl StoreStats {
    pub(crate) fn add_append(&self, bytes: u64) {
        self.records_appended.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        self.bytes_appended.fetch_add(bytes, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    pub(crate) fn bump_snapshots(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    pub(crate) fn bump_compactions(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    pub(crate) fn bump_recovered(&self) {
        self.sessions_recovered.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    pub(crate) fn bump_truncated(&self) {
        self.tails_truncated.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    /// Records one failed persistence operation.
    pub fn bump_wal_failures(&self) {
        self.wal_failures.fetch_add(1, Ordering::Relaxed); // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> StoreStatsSnapshot {
        StoreStatsSnapshot {
            records_appended: self.records_appended.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            compactions: self.compactions.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            tails_truncated: self.tails_truncated.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
            wal_failures: self.wal_failures.load(Ordering::Relaxed), // dime-check: allow(atomic-ordering) — statistics counter; readers tolerate stale values
        }
    }
}

/// A directory of per-session WALs under `<data_dir>/sessions/<id>/`.
pub struct Store {
    config: StoreConfig,
    stats: Arc<StoreStats>,
}

impl Store {
    /// Opens (creating if needed) the store root.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        let this = Self { config, stats: Arc::new(StoreStats::default()) };
        fs::create_dir_all(this.sessions_root())?;
        Ok(this)
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.stats
    }

    fn sessions_root(&self) -> PathBuf {
        self.config.data_dir.join("sessions")
    }

    fn session_dir(&self, id: u64) -> PathBuf {
        self.sessions_root().join(id.to_string())
    }

    /// Creates the WAL for a new session and logs its `open` record (the
    /// caller logs the initial rows individually, so replay is uniform).
    pub fn create_session(&self, id: u64, doc: &str, rules: &str) -> io::Result<SessionWal> {
        self.create_session_with_tap(id, doc, rules, None)
    }

    /// Like [`Store::create_session`], with a replication tap installed
    /// *before* the `open` record is appended, so the tap sees the whole
    /// log from its first byte.
    pub fn create_session_with_tap(
        &self,
        id: u64,
        doc: &str,
        rules: &str,
        tap: Option<Arc<dyn crate::WalTap>>,
    ) -> io::Result<SessionWal> {
        let mut wal =
            SessionWal::create(&self.session_dir(id), self.config.fsync, Arc::clone(&self.stats))?;
        if let Some(tap) = tap {
            wal.set_tap(id, tap);
        }
        wal.append(&crate::WalOp::Open { doc: doc.to_string(), rules: rules.to_string() })?;
        Ok(wal)
    }

    /// Recovers every session directory, in ascending id order. Closed
    /// and unrecoverable directories are removed; nothing in them may
    /// resurrect. Directories whose names are not session ids are left
    /// untouched.
    pub fn recover_sessions(&self) -> io::Result<Vec<(u64, RecoveredSession)>> {
        let mut ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(self.sessions_root())? {
            let entry = entry?;
            if let Ok(id) = entry.file_name().to_string_lossy().parse::<u64>() {
                if entry.file_type()?.is_dir() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let dir = self.session_dir(id);
            match wal::recover(&dir, self.config.fsync, Arc::clone(&self.stats))? {
                Recovery::Live(rec) => out.push((id, *rec)),
                Recovery::Closed | Recovery::Unrecoverable => {
                    fs::remove_dir_all(&dir)?;
                }
            }
        }
        Ok(out)
    }

    /// Removes a session's directory — the durable end of its life.
    /// Missing directories (session was never persisted) are fine.
    pub fn remove_session(&self, id: u64) -> io::Result<()> {
        match fs::remove_dir_all(self.session_dir(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FsyncPolicy, WalOp};
    use std::path::Path;

    fn temp_store(tag: &str) -> Store {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("dime-store-{tag}-{}-{n}", std::process::id()));
        Store::open(StoreConfig { data_dir: dir, fsync: FsyncPolicy::Never, snapshot_every: 0 })
            .expect("open store")
    }

    fn cleanup(store: &Store) {
        let _ = fs::remove_dir_all(&store.config.data_dir);
    }

    fn add(wal: &mut SessionWal, v: &str) {
        wal.append(&WalOp::AddEntity { values: vec![v.to_string()] }).unwrap();
    }

    #[test]
    fn create_recover_remove_lifecycle() {
        let store = temp_store("lifecycle");
        let mut a = store.create_session(1, "{\"doc\": 1}", "rules-a").unwrap();
        add(&mut a, "x");
        let mut b = store.create_session(2, "{\"doc\": 2}", "rules-b").unwrap();
        add(&mut b, "y");
        add(&mut b, "z");
        drop((a, b));

        let recovered = store.recover_sessions().unwrap();
        let ids: Vec<u64> = recovered.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(recovered[0].1.state.rules, "rules-a");
        assert_eq!(recovered[1].1.state.rows.len(), 2);
        assert_eq!(store.stats().snapshot().sessions_recovered, 2);

        store.remove_session(1).unwrap();
        store.remove_session(1).unwrap(); // idempotent
        let recovered = store.recover_sessions().unwrap();
        assert_eq!(recovered.len(), 1);
        cleanup(&store);
    }

    #[test]
    fn closed_sessions_are_swept_at_recovery() {
        let store = temp_store("sweep");
        let mut wal = store.create_session(7, "{}", "r").unwrap();
        wal.close().unwrap();
        drop(wal);
        assert!(store.recover_sessions().unwrap().is_empty());
        assert!(
            !Path::new(&store.session_dir(7)).exists(),
            "a closed session's directory must be swept"
        );
        cleanup(&store);
    }

    #[test]
    fn foreign_directories_are_ignored() {
        let store = temp_store("foreign");
        fs::create_dir_all(store.sessions_root().join("not-a-session")).unwrap();
        assert!(store.recover_sessions().unwrap().is_empty());
        assert!(store.sessions_root().join("not-a-session").exists());
        cleanup(&store);
    }
}
