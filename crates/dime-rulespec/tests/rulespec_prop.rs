//! Property tests for the rulespec front-end, mirroring the dime-check
//! lexer proptests: the parser must be **total** (no input panics — valid
//! specs, near-miss fragments, or raw ASCII soup), and the
//! parse → pretty-print → parse loop must be the identity on every
//! parseable spec. The strategies stay within the offline proptest
//! stub's subset: `Just`, `prop_oneof!`, `collection::vec`, `prop_map`,
//! and one-char-class regexes.

use dime_core::{Polarity, SimilarityFn};
use dime_rulespec::{parse_spec, print_spec, Cmp, Head, Literal, RuleDecl, Spec};
use proptest::prelude::*;

fn func() -> impl Strategy<Value = SimilarityFn> {
    prop_oneof![
        Just(SimilarityFn::Overlap),
        Just(SimilarityFn::Jaccard),
        Just(SimilarityFn::Dice),
        Just(SimilarityFn::Cosine),
        Just(SimilarityFn::EditSimilarity),
        Just(SimilarityFn::EditDistance),
        Just(SimilarityFn::Ontology),
    ]
}

fn cmp() -> impl Strategy<Value = Cmp> {
    prop_oneof![
        Just(Cmp::Ge),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Lt),
        Just(Cmp::Eq),
        Just(Cmp::Ne),
    ]
}

/// Threshold values whose `{}` rendering the lexer can read back (plain
/// decimals — the grammar has no exponent form).
fn value() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(1.0),
        Just(2.0),
        Just(3.0),
        Just(17.0),
        Just(100.0),
        Just(0.5),
        Just(0.25),
        Just(0.75),
        Just(0.125),
        Just(1.5),
        Just(99.875),
    ]
}

fn ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Authors".to_string()),
        Just("Title".to_string()),
        Just("x".to_string()),
        Just("_under_score".to_string()),
        Just("NOT".to_string()),
        Just("same".to_string()),
        Just("A9".to_string()),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    // Nested tuples keep within the offline stub's 4-tuple arity cap.
    ((any::<bool>(), func()), (ident(), cmp(), value())).prop_map(
        |((negated, func), (attr, cmp, value))| Literal {
            negated,
            func,
            attr,
            cmp,
            value,
            offset: 0,
        },
    )
}

fn rule() -> impl Strategy<Value = RuleDecl> {
    (any::<bool>(), proptest::collection::vec(literal(), 1..4)).prop_map(|(pos, body)| RuleDecl {
        head: Head {
            polarity: if pos { Polarity::Positive } else { Polarity::Negative },
            left: "X".to_string(),
            right: "Y".to_string(),
        },
        body,
        offset: 0,
    })
}

fn spec() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(rule(), 0..6).prop_map(|rules| Spec { rules })
}

/// Rulespec-shaped fragments — valid pieces, near-misses, and the
/// constructs whose lexing is subtle (`2.` vs `2.5`, `!` vs `!=`,
/// comments, `:-`).
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("same(X, Y) :- overlap(Authors) >= 2.".to_string()),
        Just("diff(X, Y) :- overlap(Authors) <= 0.".to_string()),
        Just("same(A, B) :- !edit_dist(Title) > 3, NOT jaccard(City) < 1.".to_string()),
        Just("% a comment\n".to_string()),
        Just("same(X, X) :- overlap(A) >= 1.".to_string()),
        Just("link(X, Y) :-".to_string()),
        Just(":- . , ( )".to_string()),
        Just("2.5.".to_string()),
        Just("2.".to_string()),
        Just("!=!<=>=<>".to_string()),
        Just("same(".to_string()),
        Just("overlap(Authors) >= ".to_string()),
        Just("…—é".to_string()),
        Just(": -".to_string()),
        "[ -~]{0,8}".prop_map(|s: String| s),
    ]
}

proptest! {
    /// parse → pretty-print → parse is the identity on the AST.
    #[test]
    fn print_parse_round_trip(s in spec()) {
        let text = print_spec(&s);
        let reparsed = parse_spec("<prop>", &text)
            .unwrap_or_else(|e| panic!("printed spec must reparse: {e}\n{text}"));
        prop_assert_eq!(&reparsed, &s);
        // And printing is a fixpoint: canonical text reprints unchanged.
        prop_assert_eq!(print_spec(&reparsed), text);
    }

    /// The parser is total on concatenated rulespec-ish fragments.
    #[test]
    fn parsing_fragment_soup_never_panics(
        parts in proptest::collection::vec(fragment(), 0..16)
    ) {
        let _ = parse_spec("<soup>", &parts.concat());
    }

    /// ... and on raw ASCII soup.
    #[test]
    fn parsing_ascii_soup_never_panics(src in "[ -~]{0,80}") {
        let _ = parse_spec("<soup>", &src);
    }
}
