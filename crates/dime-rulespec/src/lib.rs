//! # dime-rulespec — a declarative rule language for DIME
//!
//! Rules in the engine are Rust structs ([`dime_core::Rule`]); this crate
//! gives them a textual, datalog-flavored surface so clients can write,
//! install, and diff rule sets without recompiling anything:
//!
//! ```text
//! % Google Scholar profile rules (paper Figure 1)
//! same(X, Y) :- overlap(Authors) >= 2.
//! diff(X, Y) :- overlap(Authors) <= 0.
//! ```
//!
//! `same(X, Y)` heads compile to positive rules (link the pair into a
//! partition), `diff(X, Y)` heads to negative rules (flag the pair apart)
//! — the head variables are decorative, every literal is an implicit
//! constraint over the pair. Bodies are comma-separated threshold
//! literals over the engine's similarity functions; `!`/`NOT` negation
//! and the full `>= <= > < = !=` operator table are accepted and
//! normalized to DIME's closed predicate form at compile time (see
//! [`compile`] for the exact rules).
//!
//! The pipeline is three total functions, each failing with a positioned
//! [`Diagnostic`] (`file:line:col`, mapped through `dime-check`'s
//! [`LineMap`](dime_check::lexer::LineMap)):
//!
//! * [`parse_spec`] — source text → [`Spec`] syntax tree;
//! * [`compile_spec`] / [`compile_str`] — [`Spec`] → native
//!   positive/negative [`Rule`](dime_core::Rule)s, *bit-identical* to the
//!   equivalent hand-written structs (pinned by the workspace
//!   differential test);
//! * [`print_spec`] / [`render_rules`] — the inverse direction, canonical
//!   text for diffing and for shipping refined rule sets back to clients.
//!
//! [`validate_rules`] adds the Solon-style install guard `dime-serve`
//! runs before accepting a spec over the wire: every rule is exercised
//! against a sample of live pairs and degenerate always-firing rules are
//! rejected. [`semck_rules`] is the static counterpart — interval
//! reasoning over compiled predicates that flags `same`/`diff` rule
//! pairs that can fire on the same entity pair, subsumed (dead) rules,
//! and unsatisfiable thresholds. It is advisory in `dime rules check`
//! and enforced at install under `--strict`, where any finding becomes a
//! structured `rule_rejected` error naming the offending rules.
//!
//! The crate is zero-dependency beyond the workspace (`dime-core` for the
//! rule types, `dime-check` for line mapping) and panic-free in library
//! code — it is part of `dime-check`'s `panic-in-service` audit set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod semck;
pub mod validate;

pub use ast::{print_spec, Cmp, Head, Literal, RuleDecl, Spec};
pub use compile::{compile_spec, compile_str, CompiledSpec};
pub use diag::Diagnostic;
pub use parser::parse_spec;
pub use print::{render_rules, RenderError};
pub use semck::{semck_rules, semck_spec, SemFinding, SemckKind};
pub use validate::{exercise_rules, validate_rules, ExerciseReport, MIN_SAMPLE_PAIRS};

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::Schema;
    use dime_text::TokenizerKind;

    #[test]
    fn end_to_end_compile_and_render() {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let c = compile_str(
            "profile.rulespec",
            "same(X, Y) :- overlap(Authors) >= 2.\ndiff(X, Y) :- overlap(Authors) <= 0.",
            &schema,
        )
        .unwrap();
        assert_eq!(c.positive.len(), 1);
        assert_eq!(c.negative.len(), 1);
        let text = render_rules(&c.positive, &c.negative, &schema).unwrap();
        let again = compile_str("<render>", &text, &schema).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn diagnostics_carry_file_line_col() {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let err = compile_str("p.rulespec", "same(X, Y) :-\n  overlap(Venue) >= 1.", &schema)
            .unwrap_err();
        assert_eq!(
            err.to_string().split(':').take(3).collect::<Vec<_>>().join(":"),
            "p.rulespec:2:3"
        );
    }
}
