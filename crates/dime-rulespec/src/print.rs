//! Rendering native [`Rule`] sets back into rulespec text.
//!
//! This is the other half of the loop: the `feedback` op refines a rule
//! set with `dime-rulegen` and ships the result back to the client as a
//! `.rulespec` the user can diff, edit, and re-install. Rendering is
//! canonical (same layout as [`crate::ast::print_spec`]) and inverse to
//! compilation: `compile_str(render_rules(p, n, s), s) == (p, n)`.

use crate::ast::func_name;
use dime_core::{Polarity, Rule, Schema};
use std::fmt::Write as _;

/// Why a rule set cannot be rendered as rulespec text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderError {
    /// Human-readable explanation (bad attribute index, unprintable name).
    pub message: String,
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RenderError {}

/// Renders positive then negative rules, one per line, in canonical
/// layout. Fails if a predicate's attribute index is outside the schema
/// or the attribute name is not a rulespec identifier.
pub fn render_rules(
    positive: &[Rule],
    negative: &[Rule],
    schema: &Schema,
) -> Result<String, RenderError> {
    let mut out = String::new();
    for rule in positive.iter().chain(negative) {
        render_rule(&mut out, rule, schema)?;
    }
    Ok(out)
}

fn render_rule(out: &mut String, rule: &Rule, schema: &Schema) -> Result<(), RenderError> {
    let head = match rule.polarity {
        Polarity::Positive => "same",
        Polarity::Negative => "diff",
    };
    let _ = write!(out, "{head}(X, Y) :- ");
    for (i, p) in rule.predicates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let name =
            schema.attrs().get(p.attr).map(|a| a.name.as_str()).ok_or_else(|| RenderError {
                message: format!(
                    "predicate attribute index {} is outside the {}-attribute schema",
                    p.attr,
                    schema.len()
                ),
            })?;
        if !is_ident(name) {
            return Err(RenderError {
                message: format!("attribute name `{name}` is not a rulespec identifier"),
            });
        }
        // The `Predicate::holds` direction table, spelled out.
        let op = match (rule.polarity, p.func.higher_is_similar()) {
            (Polarity::Positive, true) | (Polarity::Negative, false) => ">=",
            _ => "<=",
        };
        let _ = write!(out, "{}({name}) {op} {}", func_name(p.func), p.threshold);
    }
    out.push_str(".\n");
    Ok(())
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_str;
    use dime_core::{Predicate, SimilarityFn};
    use dime_text::TokenizerKind;

    fn schema() -> Schema {
        Schema::new([("Authors", TokenizerKind::List(',')), ("Title", TokenizerKind::Words)])
    }

    #[test]
    fn renders_canonical_text() {
        let pos = vec![Rule::positive(vec![
            Predicate::new(0, SimilarityFn::Overlap, 2.0),
            Predicate::new(1, SimilarityFn::EditDistance, 3.0),
        ])];
        let neg = vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
        let text = render_rules(&pos, &neg, &schema()).unwrap();
        assert_eq!(
            text,
            "same(X, Y) :- overlap(Authors) >= 2, edit_dist(Title) <= 3.\n\
             diff(X, Y) :- overlap(Authors) <= 0.\n"
        );
    }

    #[test]
    fn render_then_compile_is_identity() {
        let pos = vec![Rule::positive(vec![
            Predicate::new(1, SimilarityFn::Jaccard, 0.5),
            Predicate::new(0, SimilarityFn::Overlap, 2.0),
        ])];
        let neg = vec![
            Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)]),
            Rule::negative(vec![Predicate::new(1, SimilarityFn::EditSimilarity, 0.25)]),
        ];
        let text = render_rules(&pos, &neg, &schema()).unwrap();
        let c = compile_str("<render>", &text, &schema()).unwrap();
        assert_eq!(c.positive, pos);
        assert_eq!(c.negative, neg);
    }

    #[test]
    fn out_of_schema_attribute_fails() {
        let pos = vec![Rule::positive(vec![Predicate::new(7, SimilarityFn::Overlap, 1.0)])];
        let err = render_rules(&pos, &[], &schema()).unwrap_err();
        assert!(err.message.contains('7'), "{}", err.message);
    }
}
