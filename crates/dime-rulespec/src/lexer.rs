//! A total, hand-written lexer for `.rulespec` sources.
//!
//! Total means every byte sequence lexes to either a token stream or a
//! positioned [`Diagnostic`] — no input panics (pinned by the adversarial
//! proptest in the crate root). The vocabulary is deliberately tiny:
//! identifiers, decimal numbers, the datalog turnstile `:-`, comparison
//! operators, and the punctuation `( ) , . !`. `%` starts a comment that
//! runs to end of line, as in classic datalog.

use crate::diag::Diagnostic;

/// One lexed token with the byte offset it starts at.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is (and its payload, for identifiers and numbers).
    pub kind: TokenKind,
    /// Byte offset of the first character, for diagnostics.
    pub offset: usize,
}

/// The rulespec token vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `[A-Za-z_][A-Za-z0-9_]*` — head keywords, function and attribute
    /// names, variables, and the `NOT` negation spelling.
    Ident(String),
    /// A non-negative decimal number (`2`, `0.75`). A trailing `.` is
    /// *not* consumed unless followed by a digit, so `2.` lexes as the
    /// number `2` followed by the rule terminator.
    Number(f64),
    /// `:-`
    Turnstile,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `!` (negation; `!=` lexes as [`TokenKind::Ne`] instead)
    Bang,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// How the token reads in a diagnostic.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Turnstile => "`:-`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Lexes a whole source, or fails with a positioned diagnostic at the
/// first character that cannot start a token.
pub fn lex(file: &str, src: &str) -> Result<Vec<Token>, Diagnostic> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while let Some(&(off, c)) = chars.get(i) {
        match c {
            c if c.is_whitespace() => i += 1,
            '%' => {
                while chars.get(i).is_some_and(|&(_, c)| c != '\n') {
                    i += 1;
                }
            }
            '(' => push(&mut toks, TokenKind::LParen, off, &mut i),
            ')' => push(&mut toks, TokenKind::RParen, off, &mut i),
            ',' => push(&mut toks, TokenKind::Comma, off, &mut i),
            '.' => push(&mut toks, TokenKind::Dot, off, &mut i),
            '=' => push(&mut toks, TokenKind::Eq, off, &mut i),
            '!' => {
                if peek(&chars, i + 1) == Some('=') {
                    toks.push(Token { kind: TokenKind::Ne, offset: off });
                    i += 2;
                } else {
                    push(&mut toks, TokenKind::Bang, off, &mut i);
                }
            }
            '>' => {
                if peek(&chars, i + 1) == Some('=') {
                    toks.push(Token { kind: TokenKind::Ge, offset: off });
                    i += 2;
                } else {
                    push(&mut toks, TokenKind::Gt, off, &mut i);
                }
            }
            '<' => {
                if peek(&chars, i + 1) == Some('=') {
                    toks.push(Token { kind: TokenKind::Le, offset: off });
                    i += 2;
                } else {
                    push(&mut toks, TokenKind::Lt, off, &mut i);
                }
            }
            ':' => {
                if peek(&chars, i + 1) == Some('-') {
                    toks.push(Token { kind: TokenKind::Turnstile, offset: off });
                    i += 2;
                } else {
                    return Err(Diagnostic::at(file, src, off, "expected `:-` after `:`"));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while chars.get(i).is_some_and(|&(_, c)| c.is_ascii_alphanumeric() || c == '_') {
                    i += 1;
                }
                let text: String =
                    chars.get(start..i).unwrap_or(&[]).iter().map(|&(_, c)| c).collect();
                toks.push(Token { kind: TokenKind::Ident(text), offset: off });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while chars.get(i).is_some_and(|&(_, c)| c.is_ascii_digit()) {
                    i += 1;
                }
                // A fractional part only if `.` is followed by a digit,
                // so the rule terminator after an integer still lexes.
                if peek(&chars, i) == Some('.')
                    && peek(&chars, i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while chars.get(i).is_some_and(|&(_, c)| c.is_ascii_digit()) {
                        i += 1;
                    }
                }
                let text: String =
                    chars.get(start..i).unwrap_or(&[]).iter().map(|&(_, c)| c).collect();
                let value: f64 = text.parse().map_err(|_| {
                    Diagnostic::at(file, src, off, format!("number `{text}` does not parse"))
                })?;
                if !value.is_finite() {
                    return Err(Diagnostic::at(
                        file,
                        src,
                        off,
                        format!("number `{text}` overflows"),
                    ));
                }
                toks.push(Token { kind: TokenKind::Number(value), offset: off });
            }
            other => {
                return Err(Diagnostic::at(
                    file,
                    src,
                    off,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    toks.push(Token { kind: TokenKind::Eof, offset: src.len() });
    Ok(toks)
}

fn push(toks: &mut Vec<Token>, kind: TokenKind, offset: usize, i: &mut usize) {
    toks.push(Token { kind, offset });
    *i += 1;
}

fn peek(chars: &[(usize, char)], i: usize) -> Option<char> {
    chars.get(i).map(|&(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex("t", src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_rule() {
        use TokenKind::*;
        assert_eq!(
            kinds("same(X, Y) :- overlap(Authors) >= 2."),
            vec![
                Ident("same".into()),
                LParen,
                Ident("X".into()),
                Comma,
                Ident("Y".into()),
                RParen,
                Turnstile,
                Ident("overlap".into()),
                LParen,
                Ident("Authors".into()),
                RParen,
                Ge,
                Number(2.0),
                Dot,
                Eof,
            ]
        );
    }

    #[test]
    fn integer_before_terminator_keeps_the_dot() {
        use TokenKind::*;
        assert_eq!(kinds("2."), vec![Number(2.0), Dot, Eof]);
        assert_eq!(kinds("2.5."), vec![Number(2.5), Dot, Eof]);
    }

    #[test]
    fn comments_run_to_end_of_line() {
        use TokenKind::*;
        assert_eq!(kinds("% a comment\n! % tail\n="), vec![Bang, Eq, Eof]);
    }

    #[test]
    fn bang_equals_is_one_token() {
        use TokenKind::*;
        assert_eq!(kinds("!= ! ="), vec![Ne, Bang, Eq, Eof]);
    }

    #[test]
    fn bad_character_is_positioned() {
        let err = lex("t", "same @").unwrap_err();
        assert_eq!((err.line, err.col), (1, 6));
        assert!(err.message.contains('@'), "{}", err.message);
    }

    #[test]
    fn lone_colon_is_rejected() {
        let err = lex("t", "a : b").unwrap_err();
        assert!(err.message.contains(":-"), "{}", err.message);
    }
}
