//! Positioned diagnostics for rulespec sources.
//!
//! Every parse or compile failure points at the offending byte with a
//! `file:line:col` prefix, the same shape `rustc` and `dime-check` emit,
//! so editors and CI logs can jump straight to it. Offsets are mapped to
//! 1-based line/column pairs through [`dime_check::lexer::LineMap`] — the
//! analyzer's own line-mapping machinery — so the two tools agree on what
//! a "column" is (characters, not bytes).

use dime_check::lexer::LineMap;
use std::fmt;

/// One positioned error in a rulespec source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Source name (a path, or a synthetic name like `<install>`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column, counted in characters.
    pub col: usize,
    /// What went wrong, phrased against the source text.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic pointing at `offset` within `src`.
    pub fn at(file: &str, src: &str, offset: usize, message: impl Into<String>) -> Self {
        let (line, col) = LineMap::new(src).line_col(src, offset.min(src.len()));
        Self { file: file.to_string(), line, col, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}", self.file, self.line, self.col, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_at_line_and_column() {
        let src = "abc\ndef ghi\n";
        let d = Diagnostic::at("x.rulespec", src, 8, "boom");
        assert_eq!((d.line, d.col), (2, 5));
        assert_eq!(d.to_string(), "x.rulespec:2:5: boom");
    }

    #[test]
    fn offset_past_eof_is_clamped() {
        let d = Diagnostic::at("f", "ab", 999, "eof");
        assert_eq!((d.line, d.col), (1, 3));
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        let src = "héllo there";
        // Offset of 't' is 7 bytes in, but only the 7th character.
        let off = src.find("there").unwrap_or(0);
        let d = Diagnostic::at("f", src, off, "m");
        assert_eq!((d.line, d.col), (1, 7));
    }
}
