//! The rulespec syntax tree and its canonical pretty-printer.
//!
//! The tree stores exactly what the user wrote (negation, comparison
//! operator, threshold, variable names) — normalization to DIME's closed
//! `>=`/`<=` predicate form happens later, in [`crate::compile`]. Byte
//! offsets ride along for diagnostics but are excluded from equality, so
//! `parse(print(spec)) == spec` holds even though printing rewrites the
//! layout.

use dime_core::{Polarity, SimilarityFn};
use std::fmt;

/// A parsed `.rulespec` source: zero or more rule declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// Declarations in source order (the scrollbar order for negatives).
    pub rules: Vec<RuleDecl>,
}

/// One `head :- literal, literal, ... .` declaration.
#[derive(Debug, Clone)]
pub struct RuleDecl {
    /// The `same(X, Y)` / `diff(X, Y)` head.
    pub head: Head,
    /// The comma-separated body; grammatically never empty.
    pub body: Vec<Literal>,
    /// Byte offset of the head keyword, for diagnostics.
    pub offset: usize,
}

impl PartialEq for RuleDecl {
    fn eq(&self, other: &Self) -> bool {
        // Offsets are layout, not meaning — printing changes them.
        self.head == other.head && self.body == other.body
    }
}

/// A rule head: polarity keyword plus the two entity variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// `same` → positive, `diff` → negative.
    pub polarity: Polarity,
    /// First entity variable (decorative; kept for printing).
    pub left: String,
    /// Second entity variable; must differ from `left`.
    pub right: String,
}

/// One body literal: an optionally negated threshold comparison over a
/// similarity function applied to a schema attribute.
#[derive(Debug, Clone)]
pub struct Literal {
    /// `!f(...) cmp v` — negation complements the comparison.
    pub negated: bool,
    /// The similarity function, resolved at parse time.
    pub func: SimilarityFn,
    /// Attribute name as written; resolved against the schema at compile.
    pub attr: String,
    /// The comparison operator as written.
    pub cmp: Cmp,
    /// The threshold value.
    pub value: f64,
    /// Byte offset of the literal start, for diagnostics.
    pub offset: usize,
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        self.negated == other.negated
            && self.func == other.func
            && self.attr == other.attr
            && self.cmp == other.cmp
            && self.value == other.value
    }
}

/// Comparison operators, the full snippet-3 table. `!=` parses but is
/// rejected at compile time (DIME predicates are single closed
/// comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `=` — sugar for "the comparison this polarity expects".
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Ge => ">=",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Lt => "<",
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
        })
    }
}

/// The canonical spelling of a similarity function in rulespec sources.
pub fn func_name(f: SimilarityFn) -> &'static str {
    match f {
        SimilarityFn::Overlap => "overlap",
        SimilarityFn::Jaccard => "jaccard",
        SimilarityFn::Dice => "dice",
        SimilarityFn::Cosine => "cosine",
        SimilarityFn::EditSimilarity => "edit_sim",
        SimilarityFn::EditDistance => "edit_dist",
        SimilarityFn::Ontology => "ontology",
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            f.write_str("!")?;
        }
        // `{}` on f64 prints the shortest round-tripping decimal, so
        // parse(print(x)) recovers the value bit-for-bit.
        write!(f, "{}({}) {} {}", func_name(self.func), self.attr, self.cmp, self.value)
    }
}

impl fmt::Display for RuleDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.head.polarity {
            Polarity::Positive => "same",
            Polarity::Negative => "diff",
        };
        write!(f, "{kw}({}, {}) :- ", self.head.left, self.head.right)?;
        for (i, lit) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{lit}")?;
        }
        f.write_str(".")
    }
}

/// Pretty-prints a spec in canonical layout: one rule per line, single
/// spaces, canonical function names. `parse(print(s)) == s` — pinned by
/// the round-trip proptest.
pub fn print_spec(spec: &Spec) -> String {
    let mut out = String::new();
    for rule in &spec.rules {
        out.push_str(&rule.to_string());
        out.push('\n');
    }
    out
}
