//! Recursive-descent parser for `.rulespec` sources.
//!
//! Grammar (datalog-flavored; `%` comments, case-sensitive keywords):
//!
//! ```text
//! spec    := rule*
//! rule    := head ':-' literal (',' literal)* '.'
//! head    := ('same' | 'diff') '(' IDENT ',' IDENT ')'
//! literal := ('!' | 'NOT')? FUNC '(' IDENT ')' cmp NUMBER
//! cmp     := '>=' | '<=' | '>' | '<' | '=' | '!='
//! FUNC    := overlap | jaccard | dice | cosine | edit_sim | edit_dist
//!          | ontology        (aliases: editsim, editdist)
//! ```
//!
//! The parser is total: every input yields a [`Spec`] or a positioned
//! [`Diagnostic`], never a panic. Unknown functions, missing
//! terminators, and head variables that collide are all caught here;
//! schema resolution and operator-direction checks live in
//! [`crate::compile`] because they need a [`dime_core::Schema`].

use crate::ast::{Cmp, Head, Literal, RuleDecl, Spec};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use dime_core::{Polarity, SimilarityFn};

/// Parses a whole source into a [`Spec`], or fails with the first error.
/// `file` names the source in diagnostics (use a synthetic name like
/// `<install>` for over-the-wire specs).
pub fn parse_spec(file: &str, src: &str) -> Result<Spec, Diagnostic> {
    let toks = lex(file, src)?;
    let mut p = Parser { file, src, toks, i: 0 };
    let mut rules = Vec::new();
    while !p.at_eof() {
        rules.push(p.rule()?);
    }
    Ok(Spec { rules })
}

struct Parser<'a> {
    file: &'a str,
    src: &'a str,
    toks: Vec<Token>,
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        self.toks.get(self.i).map_or(&TokenKind::Eof, |t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map_or(self.src.len(), |t| t.offset)
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.peek().clone();
        if !self.at_eof() {
            self.i += 1;
        }
        kind
    }

    fn err(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::at(self.file, self.src, self.offset(), message)
    }

    fn require(&mut self, want: &TokenKind, ctx: &str) -> Result<(), Diagnostic> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {} {ctx}, found {}",
                want.describe(),
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn rule(&mut self) -> Result<RuleDecl, Diagnostic> {
        let offset = self.offset();
        let kw = self.ident("`same` or `diff` rule head")?;
        let polarity = match kw.as_str() {
            "same" => Polarity::Positive,
            "diff" => Polarity::Negative,
            other => {
                return Err(Diagnostic::at(
                    self.file,
                    self.src,
                    offset,
                    format!("unknown rule head `{other}`; rules start with `same(X, Y)` or `diff(X, Y)`"),
                ));
            }
        };
        self.require(&TokenKind::LParen, "after the rule head keyword")?;
        let left = self.ident("an entity variable")?;
        self.require(&TokenKind::Comma, "between the head variables")?;
        let right_off = self.offset();
        let right = self.ident("an entity variable")?;
        if left == right {
            return Err(Diagnostic::at(
                self.file,
                self.src,
                right_off,
                format!("head variables must be distinct (both are `{left}`)"),
            ));
        }
        self.require(&TokenKind::RParen, "to close the rule head")?;
        self.require(&TokenKind::Turnstile, "after the rule head")?;
        let mut body = vec![self.literal()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            body.push(self.literal()?);
        }
        self.require(&TokenKind::Dot, "to end the rule")?;
        Ok(RuleDecl { head: Head { polarity, left, right }, body, offset })
    }

    fn literal(&mut self) -> Result<Literal, Diagnostic> {
        let offset = self.offset();
        let negated = match self.peek() {
            TokenKind::Bang => {
                self.bump();
                true
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("not") => {
                self.bump();
                true
            }
            _ => false,
        };
        let func_off = self.offset();
        let func_name = self.ident("a similarity function")?;
        let func = resolve_func(&func_name).ok_or_else(|| {
            Diagnostic::at(
                self.file,
                self.src,
                func_off,
                format!(
                    "unknown similarity function `{func_name}` (expected overlap, jaccard, dice, \
                     cosine, edit_sim, edit_dist, or ontology)"
                ),
            )
        })?;
        self.require(&TokenKind::LParen, "after the function name")?;
        let attr = self.ident("an attribute name")?;
        self.require(&TokenKind::RParen, "after the attribute name")?;
        let cmp = match self.bump() {
            TokenKind::Ge => Cmp::Ge,
            TokenKind::Le => Cmp::Le,
            TokenKind::Gt => Cmp::Gt,
            TokenKind::Lt => Cmp::Lt,
            TokenKind::Eq => Cmp::Eq,
            TokenKind::Ne => Cmp::Ne,
            other => {
                // `bump` advanced past the bad token; point at it.
                let off =
                    self.toks.get(self.i.saturating_sub(1)).map_or(self.src.len(), |t| t.offset);
                return Err(Diagnostic::at(
                    self.file,
                    self.src,
                    off,
                    format!("expected a comparison operator, found {}", other.describe()),
                ));
            }
        };
        let value = match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                n
            }
            other => {
                return Err(
                    self.err(format!("expected a threshold number, found {}", other.describe()))
                );
            }
        };
        Ok(Literal { negated, func, attr, cmp, value, offset })
    }
}

/// Resolves a function name, accepting the same aliases as the simple
/// DSL in `dime-core` (`editsim`/`editdist`), case-insensitively.
pub fn resolve_func(name: &str) -> Option<SimilarityFn> {
    Some(match name.to_ascii_lowercase().as_str() {
        "overlap" => SimilarityFn::Overlap,
        "jaccard" => SimilarityFn::Jaccard,
        "dice" => SimilarityFn::Dice,
        "cosine" => SimilarityFn::Cosine,
        "edit_sim" | "editsim" => SimilarityFn::EditSimilarity,
        "edit_dist" | "editdist" => SimilarityFn::EditDistance,
        "ontology" => SimilarityFn::Ontology,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_two_rule_spec() {
        let spec = parse_spec(
            "t",
            "% paper Figure 1 rules\n\
             same(X, Y) :- overlap(Authors) >= 2.\n\
             diff(X, Y) :- overlap(Authors) <= 0.\n",
        )
        .unwrap();
        assert_eq!(spec.rules.len(), 2);
        assert_eq!(spec.rules[0].head.polarity, Polarity::Positive);
        assert_eq!(spec.rules[1].head.polarity, Polarity::Negative);
        assert_eq!(spec.rules[0].body[0].func, SimilarityFn::Overlap);
        assert_eq!(spec.rules[0].body[0].value, 2.0);
    }

    #[test]
    fn parses_negation_both_spellings() {
        let spec =
            parse_spec("t", "same(X, Y) :- !edit_dist(Name) > 3, NOT jaccard(City) < 1.").unwrap();
        assert!(spec.rules[0].body.iter().all(|l| l.negated));
    }

    #[test]
    fn multi_literal_bodies_and_aliases() {
        let spec =
            parse_spec("t", "same(A, B) :- jaccard(Name) >= 0.5, editsim(City) >= 0.8.").unwrap();
        assert_eq!(spec.rules[0].body.len(), 2);
        assert_eq!(spec.rules[0].body[1].func, SimilarityFn::EditSimilarity);
    }

    #[test]
    fn same_head_variables_are_rejected() {
        let err = parse_spec("t", "same(X, X) :- overlap(A) >= 1.").unwrap_err();
        assert!(err.message.contains("distinct"), "{}", err.message);
        assert_eq!((err.line, err.col), (1, 9));
    }

    #[test]
    fn unknown_head_keyword_is_rejected() {
        let err = parse_spec("t", "link(X, Y) :- overlap(A) >= 1.").unwrap_err();
        assert!(err.message.contains("link"), "{}", err.message);
    }

    #[test]
    fn unknown_function_is_positioned() {
        let err = parse_spec("t", "same(X, Y) :-\n  levenshtein(A) >= 1.").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        assert!(err.message.contains("levenshtein"), "{}", err.message);
    }

    #[test]
    fn missing_terminator_is_rejected() {
        let err = parse_spec("t", "same(X, Y) :- overlap(A) >= 1").unwrap_err();
        assert!(err.message.contains("`.`"), "{}", err.message);
    }

    #[test]
    fn empty_spec_is_ok() {
        assert!(parse_spec("t", "% nothing but comments\n").unwrap().rules.is_empty());
    }
}
