//! Solon-style install validation: exercise every rule against a sample
//! before accepting it.
//!
//! A rulespec that parses and compiles can still be operationally wrong —
//! `same(X, Y) :- overlap(Authors) >= 0.` type-checks but links every
//! pair, silently turning discovery into a no-op. Before `dime-serve`
//! accepts an install, each compiled rule is evaluated over a bounded
//! sample of the session's live entity pairs; a rule that fires on
//! *every* sampled pair (given enough pairs to mean anything) is rejected
//! with a structured error naming it. Sessions too small to sample pass
//! trivially — validation is a guard, not an oracle.

use dime_core::{Group, Rule};

/// How each rule behaved on the sampled pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExerciseReport {
    /// Number of entity pairs evaluated (0 for groups under 2 entities).
    pub pairs: usize,
    /// Per-rule fire counts, in input order.
    pub fired: Vec<usize>,
}

/// Fewest sampled pairs for the degeneracy verdict to be meaningful.
pub const MIN_SAMPLE_PAIRS: usize = 4;

/// Evaluates every rule over up to `max_pairs` entity pairs, in id order
/// `(0,1), (0,2), (1,2), ...` so the sample is deterministic.
pub fn exercise_rules(group: &Group, rules: &[Rule], max_pairs: usize) -> ExerciseReport {
    let mut fired = vec![0usize; rules.len()];
    let mut pairs = 0usize;
    let entities = group.entities();
    'outer: for (j, b) in entities.iter().enumerate() {
        for a in entities.get(..j).unwrap_or(&[]) {
            if pairs >= max_pairs {
                break 'outer;
            }
            pairs += 1;
            for (fire, rule) in fired.iter_mut().zip(rules) {
                if rule.eval(group, a, b) {
                    *fire += 1;
                }
            }
        }
    }
    ExerciseReport { pairs, fired }
}

/// Runs the full validation: every rule exercised, degenerate rules
/// (firing on all of a meaningful sample) rejected with a message naming
/// the rule. Returns the report so callers can surface fire counts.
pub fn validate_rules(
    group: &Group,
    rules: &[Rule],
    max_pairs: usize,
) -> Result<ExerciseReport, String> {
    let report = exercise_rules(group, rules, max_pairs);
    if report.pairs >= MIN_SAMPLE_PAIRS {
        for (i, (&fire, rule)) in report.fired.iter().zip(rules).enumerate() {
            if fire == report.pairs {
                return Err(format!(
                    "rule {i} ({rule}) fired on all {} sampled pairs; a rule that always \
                     fires cannot discriminate — tighten its thresholds",
                    report.pairs
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_core::{GroupBuilder, Predicate, Schema, SimilarityFn};
    use dime_text::TokenizerKind;

    fn group() -> Group {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["ann, bob, carl"]);
        b.add_entity(&["ann, bob, dora"]);
        b.add_entity(&["bob, carl, emma"]);
        b.add_entity(&["xavier, yolanda"]);
        b.build()
    }

    #[test]
    fn discriminating_rules_pass() {
        let rules = vec![
            Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)]),
            Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)]),
        ];
        let report = validate_rules(&group(), &rules, 64).unwrap();
        assert_eq!(report.pairs, 6);
        assert!(report.fired[0] < report.pairs && report.fired[0] > 0);
    }

    #[test]
    fn always_firing_rule_is_rejected() {
        let rules = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
        let err = validate_rules(&group(), &rules, 64).unwrap_err();
        assert!(err.contains("rule 0"), "{err}");
        assert!(err.contains("all 6"), "{err}");
    }

    #[test]
    fn tiny_sessions_pass_trivially() {
        let schema = Schema::new([("Authors", TokenizerKind::List(','))]);
        let mut b = GroupBuilder::new(schema);
        b.add_entity(&["ann"]);
        b.add_entity(&["ann"]);
        let g = b.build();
        // One pair < MIN_SAMPLE_PAIRS: even an always-firing rule passes.
        let rules = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])];
        assert!(validate_rules(&g, &rules, 64).is_ok());
    }

    #[test]
    fn sample_is_bounded() {
        let rules = vec![Rule::positive(vec![Predicate::new(0, SimilarityFn::Overlap, 2.0)])];
        let report = exercise_rules(&group(), &rules, 3);
        assert_eq!(report.pairs, 3);
    }
}
