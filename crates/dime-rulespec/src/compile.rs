//! Compiling a parsed [`Spec`] into DIME's native rule representation.
//!
//! The target is exactly [`dime_core::Rule`] — the same struct the
//! engines, the signature planner, and the verify arena consume — so a
//! compiled rulespec is *bit-identical* to the equivalent hand-written
//! Rust rule: same predicates, same thresholds, same polarity, and
//! therefore the same `CompiledRule` once the verify arena lowers it.
//! The differential test in the workspace root pins this.
//!
//! What compilation does beyond name resolution:
//!
//! * **Negation** complements the comparison (`!f(A) >= t` ≡ `f(A) < t`),
//!   then the result is normalized like any other literal.
//! * **Strict comparisons** are closed over the integer-valued functions
//!   (`overlap`, `edit_dist`): `> t` becomes `>= ⌊t⌋+1`, `< t` becomes
//!   `<= ⌈t⌉-1`. For fractional-valued functions there is no adjacent
//!   representable threshold, so strict operators are rejected with a
//!   diagnostic instead of silently changing meaning.
//! * **`=`** is sugar for whichever closed comparison the head polarity
//!   expects; `!=` (and negated `=`) is not expressible as a single DIME
//!   predicate and is rejected.
//! * The final comparison direction must match the head: a `same` rule
//!   asserts similarity, so `overlap` must be bounded from below and
//!   `edit_dist` from above — mismatches are diagnosed, mirroring the
//!   operator check in `dime_core::parse_rule`.

use crate::ast::{func_name, Cmp, Literal, Spec};
use crate::diag::Diagnostic;
use dime_core::{Polarity, Predicate, Rule, Schema, SimilarityFn};

/// Positive and negative rules compiled from one spec, in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledSpec {
    /// `same(...)` rules, in source order.
    pub positive: Vec<Rule>,
    /// `diff(...)` rules, in source order (the scrollbar order).
    pub negative: Vec<Rule>,
}

/// Parses and compiles a source in one step.
pub fn compile_str(file: &str, src: &str, schema: &Schema) -> Result<CompiledSpec, Diagnostic> {
    let spec = crate::parser::parse_spec(file, src)?;
    compile_spec(file, src, &spec, schema)
}

/// Compiles a parsed spec against a schema. `file`/`src` must be the
/// source the spec was parsed from — compile diagnostics reuse the AST's
/// byte offsets to point back into it.
pub fn compile_spec(
    file: &str,
    src: &str,
    spec: &Spec,
    schema: &Schema,
) -> Result<CompiledSpec, Diagnostic> {
    let mut out = CompiledSpec::default();
    for decl in &spec.rules {
        let polarity = decl.head.polarity;
        let mut predicates = Vec::with_capacity(decl.body.len());
        for lit in &decl.body {
            predicates.push(compile_literal(file, src, lit, polarity, schema)?);
        }
        let rule = Rule { predicates, polarity };
        match polarity {
            Polarity::Positive => out.positive.push(rule),
            Polarity::Negative => out.negative.push(rule),
        }
    }
    Ok(out)
}

/// Whether the function's value range is the non-negative integers (so
/// strict comparisons have an adjacent closed form).
fn integer_valued(f: SimilarityFn) -> bool {
    matches!(f, SimilarityFn::Overlap | SimilarityFn::EditDistance)
}

fn compile_literal(
    file: &str,
    src: &str,
    lit: &Literal,
    polarity: Polarity,
    schema: &Schema,
) -> Result<Predicate, Diagnostic> {
    let diag = |msg: String| Diagnostic::at(file, src, lit.offset, msg);
    let attr = schema.attr_index(&lit.attr).ok_or_else(|| {
        let known: Vec<&str> = schema.attrs().iter().map(|a| a.name.as_str()).collect();
        diag(format!("unknown attribute `{}` (schema has: {})", lit.attr, known.join(", ")))
    })?;

    // Negation complements the comparison, then falls through to the
    // same normalization as a plain literal.
    let cmp = if lit.negated {
        match lit.cmp {
            Cmp::Ge => Cmp::Lt,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Lt => Cmp::Ge,
            Cmp::Ne => Cmp::Eq,
            Cmp::Eq => {
                return Err(diag(
                    "negated `=` (i.e. `!=`) is not expressible as a DIME predicate".into(),
                ));
            }
        }
    } else {
        lit.cmp
    };

    // `>=` for (same, higher-is-similar) and (diff, lower-is-similar);
    // `<=` otherwise — the `Predicate::holds` table.
    let expect_ge = matches!(
        (polarity, lit.func.higher_is_similar()),
        (Polarity::Positive, true) | (Polarity::Negative, false)
    );

    let (is_ge, threshold) = match cmp {
        Cmp::Ge => (true, lit.value),
        Cmp::Le => (false, lit.value),
        Cmp::Gt | Cmp::Lt => {
            if !integer_valued(lit.func) {
                return Err(diag(format!(
                    "strict `{}` on fractional-valued `{}`; use `>=` / `<=` (thresholds are closed)",
                    lit.cmp,
                    func_name(lit.func),
                )));
            }
            if matches!(cmp, Cmp::Gt) {
                (true, lit.value.floor() + 1.0)
            } else {
                (false, (lit.value.ceil() - 1.0).max(0.0))
            }
        }
        Cmp::Eq => (expect_ge, lit.value),
        Cmp::Ne => {
            return Err(diag("`!=` is not expressible as a DIME predicate".into()));
        }
    };

    if is_ge != expect_ge {
        let head = match polarity {
            Polarity::Positive => "same",
            Polarity::Negative => "diff",
        };
        let dir = if lit.func.higher_is_similar() { "higher" } else { "lower" };
        let want = if expect_ge { ">=" } else { "<=" };
        return Err(diag(format!(
            "`{}` bounds the wrong side for a `{head}` rule: {dir} {} means more similar, so use `{want}`",
            func_name(lit.func),
            func_name(lit.func),
        )));
    }

    Ok(Predicate::new(attr, lit.func, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dime_text::TokenizerKind;

    fn schema() -> Schema {
        Schema::new([("Authors", TokenizerKind::List(',')), ("Title", TokenizerKind::Words)])
    }

    fn compile(src: &str) -> Result<CompiledSpec, Diagnostic> {
        compile_str("t", src, &schema())
    }

    #[test]
    fn compiles_bit_identically_to_rust_structs() {
        let c = compile(
            "same(X, Y) :- overlap(Authors) >= 2, jaccard(Title) >= 0.5.\n\
             diff(X, Y) :- overlap(Authors) <= 0.",
        )
        .unwrap();
        assert_eq!(
            c.positive,
            vec![Rule::positive(vec![
                Predicate::new(0, SimilarityFn::Overlap, 2.0),
                Predicate::new(1, SimilarityFn::Jaccard, 0.5),
            ])]
        );
        assert_eq!(
            c.negative,
            vec![Rule::negative(vec![Predicate::new(0, SimilarityFn::Overlap, 0.0)])]
        );
    }

    #[test]
    fn strict_ops_close_over_integer_functions() {
        let c = compile("same(X, Y) :- overlap(Authors) > 1.").unwrap();
        assert_eq!(c.positive[0].predicates[0].threshold, 2.0);
        let c = compile("same(X, Y) :- edit_dist(Title) < 3.").unwrap();
        assert_eq!(c.positive[0].predicates[0].threshold, 2.0);
        // Non-integral strict thresholds round to the enclosed integer.
        let c = compile("same(X, Y) :- overlap(Authors) > 1.5.").unwrap();
        assert_eq!(c.positive[0].predicates[0].threshold, 2.0);
    }

    #[test]
    fn strict_ops_on_fractional_functions_are_rejected() {
        let err = compile("same(X, Y) :- jaccard(Title) > 0.5.").unwrap_err();
        assert!(err.message.contains("closed"), "{}", err.message);
    }

    #[test]
    fn negation_complements_the_comparison() {
        // !edit_dist > 3  ≡  edit_dist <= 3, the direction a same-rule wants.
        let c = compile("same(X, Y) :- !edit_dist(Title) > 3.").unwrap();
        assert_eq!(c.positive[0].predicates[0], Predicate::new(1, SimilarityFn::EditDistance, 3.0));
        // NOT overlap >= 1  ≡  overlap <= 0, what a diff-rule wants.
        let c = compile("diff(X, Y) :- NOT overlap(Authors) >= 1.").unwrap();
        assert_eq!(c.negative[0].predicates[0], Predicate::new(0, SimilarityFn::Overlap, 0.0));
    }

    #[test]
    fn equals_is_polarity_directed_sugar() {
        let same = compile("same(X, Y) :- overlap(Authors) = 2.").unwrap();
        assert_eq!(same.positive[0].predicates[0].threshold, 2.0);
        let diff = compile("diff(X, Y) :- overlap(Authors) = 0.").unwrap();
        assert_eq!(diff.negative[0].predicates[0].threshold, 0.0);
    }

    #[test]
    fn not_equals_is_rejected() {
        let err = compile("same(X, Y) :- overlap(Authors) != 2.").unwrap_err();
        assert!(err.message.contains("!="), "{}", err.message);
    }

    #[test]
    fn wrong_direction_is_diagnosed() {
        let err = compile("same(X, Y) :- overlap(Authors) <= 2.").unwrap_err();
        assert!(err.message.contains(">="), "{}", err.message);
        let err = compile("diff(X, Y) :- jaccard(Title) >= 0.5.").unwrap_err();
        assert!(err.message.contains("<="), "{}", err.message);
        // edit distance: lower is similar, so same-rules bound from above.
        assert!(compile("same(X, Y) :- edit_dist(Title) <= 2.").is_ok());
        assert!(compile("same(X, Y) :- edit_dist(Title) >= 2.").is_err());
    }

    #[test]
    fn unknown_attribute_lists_the_schema() {
        let err = compile("same(X, Y) :- overlap(Venue) >= 1.").unwrap_err();
        assert!(err.message.contains("Venue"), "{}", err.message);
        assert!(err.message.contains("Authors"), "{}", err.message);
    }

    #[test]
    fn matches_the_simple_dsl_compilation() {
        // The two front-ends must agree on the compiled representation.
        let via_spec =
            compile("same(X, Y) :- overlap(Authors) >= 2.\ndiff(X, Y) :- overlap(Authors) <= 0.")
                .unwrap();
        let via_simple = dime_core::parse_rules(
            "positive: overlap(Authors) >= 2\nnegative: overlap(Authors) <= 0",
            &schema(),
        )
        .unwrap();
        let (pos, neg): (Vec<Rule>, Vec<Rule>) =
            via_simple.into_iter().partition(|r| r.polarity == Polarity::Positive);
        assert_eq!(via_spec.positive, pos);
        assert_eq!(via_spec.negative, neg);
    }
}
