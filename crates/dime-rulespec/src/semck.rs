//! Semantic analysis over compiled rule sets: interval reasoning that
//! catches specs which parse, compile, and even exercise cleanly but
//! cannot mean what the author intended.
//!
//! Every predicate `f(A) >= t` / `f(A) <= t` denotes a closed interval
//! of similarity values over the dimension `(A, f)`, clamped to the
//! function's value range (`jaccard`/`dice`/`cosine`/`edit_sim`/
//! `ontology` range over `[0, 1]`; `overlap` over the non-negative
//! integers — `[0, 1]` when the attribute's tokenizer is `Whole`, which
//! yields single-token sets; `edit_dist` over `[0, ∞)`). A rule's region
//! is the product of its per-dimension intervals. Three findings fall
//! out:
//!
//! * **conflict** — a `same` rule and a `diff` rule constrain at least
//!   one common dimension and *every* shared dimension's intervals
//!   intersect: some pair fires both, and whether it links or flags
//!   depends on evaluation order. (Rules with disjoint dimension sets
//!   are not flagged — constraining different attributes is the normal
//!   shape of a spec, and their interaction is the engine's
//!   positive-over-negative precedence, not an authoring bug.)
//! * **subsumption** — two same-polarity rules where one's region
//!   contains the other's on every dimension the wider rule constrains:
//!   the narrower rule can never fire on a pair the wider one misses,
//!   so it is dead weight (often a stale copy left behind by a
//!   feedback-refinement round).
//! * **unsatisfiable** — a predicate whose clamped interval is empty
//!   (`jaccard(T) >= 1.5`, `edit_dist(T) <= -1`): the rule can never
//!   fire at all.
//!
//! The pass is advisory in `dime rules check` (warnings) and enforced at
//! install under `--strict`, where any finding is a structured
//! `rule_rejected` error naming the offending rules.

use crate::compile::CompiledSpec;
use dime_core::{Polarity, Predicate, Rule, Schema, SimilarityFn};
use dime_text::TokenizerKind;

/// What kind of semantic defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemckKind {
    /// A `same` and a `diff` rule can fire on the same pair.
    Conflict,
    /// A rule is contained in another rule of the same polarity.
    Subsumption,
    /// A predicate's interval is empty: the rule can never fire.
    Unsatisfiable,
}

impl SemckKind {
    /// Stable lowercase tag for wire payloads and CLI output.
    pub fn tag(self) -> &'static str {
        match self {
            SemckKind::Conflict => "conflict",
            SemckKind::Subsumption => "subsumption",
            SemckKind::Unsatisfiable => "unsatisfiable",
        }
    }
}

/// One semantic finding. The message names every involved rule in its
/// canonical rendering, so a client can locate them in the spec it sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemFinding {
    /// The defect class.
    pub kind: SemckKind,
    /// Human-readable description naming the rule(s).
    pub message: String,
}

/// A closed interval of similarity values; `hi` may be `f64::INFINITY`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Iv {
    lo: f64,
    hi: f64,
}

impl Iv {
    fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    fn intersects(self, other: Iv) -> bool {
        self.lo.max(other.lo) <= self.hi.min(other.hi)
    }

    fn contains(self, other: Iv) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// The value range of a similarity function on a given attribute.
fn value_range(func: SimilarityFn, tokenizer: Option<TokenizerKind>) -> Iv {
    match func {
        SimilarityFn::Jaccard
        | SimilarityFn::Dice
        | SimilarityFn::Cosine
        | SimilarityFn::EditSimilarity
        | SimilarityFn::Ontology => Iv { lo: 0.0, hi: 1.0 },
        // A `Whole` tokenizer yields at most one token per entity, so
        // set overlap cannot exceed 1.
        SimilarityFn::Overlap => match tokenizer {
            Some(TokenizerKind::Whole) => Iv { lo: 0.0, hi: 1.0 },
            _ => Iv { lo: 0.0, hi: f64::INFINITY },
        },
        SimilarityFn::EditDistance => Iv { lo: 0.0, hi: f64::INFINITY },
    }
}

/// The interval a predicate admits under its rule's polarity, clamped to
/// the function's value range. Mirrors the `Predicate::holds` direction
/// table: `>=` for (same, higher-is-similar) and (diff, lower-is-similar),
/// `<=` otherwise.
fn pred_interval(polarity: Polarity, p: &Predicate, schema: &Schema) -> Iv {
    let tokenizer = schema.attrs().get(p.attr).map(|a| a.tokenizer);
    let range = value_range(p.func, tokenizer);
    let expect_ge = matches!(
        (polarity, p.func.higher_is_similar()),
        (Polarity::Positive, true) | (Polarity::Negative, false)
    );
    if expect_ge {
        Iv { lo: p.threshold.max(range.lo), hi: range.hi }
    } else {
        Iv { lo: range.lo, hi: p.threshold.min(range.hi) }
    }
}

/// One rule's region: per-dimension `(attr, func)` intervals, multiple
/// predicates on a dimension intersected. Rules are small (a handful of
/// predicates), so linear scans beat a map here.
fn region(rule: &Rule, schema: &Schema) -> Vec<((usize, SimilarityFn), Iv)> {
    let mut dims: Vec<((usize, SimilarityFn), Iv)> = Vec::with_capacity(rule.predicates.len());
    for p in &rule.predicates {
        let iv = pred_interval(rule.polarity, p, schema);
        match dims.iter_mut().find(|(d, _)| *d == (p.attr, p.func)) {
            Some((_, have)) => {
                have.lo = have.lo.max(iv.lo);
                have.hi = have.hi.min(iv.hi);
            }
            None => dims.push(((p.attr, p.func), iv)),
        }
    }
    dims
}

/// Short label for a rule in messages, in the client's own syntax:
/// ``same rule 0 (`same(X, Y) :- overlap(Authors) >= 1.`)``. Falls back
/// to the engine's index-based rendering if the schema cannot print it.
fn label(polarity: Polarity, index: usize, rule: &Rule, schema: &Schema) -> String {
    let head = match polarity {
        Polarity::Positive => "same",
        Polarity::Negative => "diff",
    };
    let rendered = match polarity {
        Polarity::Positive => crate::print::render_rules(std::slice::from_ref(rule), &[], schema),
        Polarity::Negative => crate::print::render_rules(&[], std::slice::from_ref(rule), schema),
    };
    match rendered {
        Ok(text) => format!("{head} rule {index} (`{}`)", text.trim_end()),
        Err(_) => format!("{head} rule {index} ({rule})"),
    }
}

/// Runs the full semantic pass over compiled positive and negative rule
/// sets. Findings are ordered: unsatisfiable first (they often explain a
/// "missing" conflict), then conflicts, then subsumptions.
pub fn semck_rules(positive: &[Rule], negative: &[Rule], schema: &Schema) -> Vec<SemFinding> {
    let mut out = Vec::new();
    let pos_regions: Vec<_> = positive.iter().map(|r| region(r, schema)).collect();
    let neg_regions: Vec<_> = negative.iter().map(|r| region(r, schema)).collect();

    // Unsatisfiable predicates: empty clamped interval on any dimension.
    for (polarity, rules, regions) in
        [(Polarity::Positive, positive, &pos_regions), (Polarity::Negative, negative, &neg_regions)]
    {
        for (i, (rule, dims)) in rules.iter().zip(regions).enumerate() {
            for ((attr, func), iv) in dims {
                if iv.is_empty() {
                    let name = schema
                        .attrs()
                        .get(*attr)
                        .map(|a| a.name.as_str())
                        .unwrap_or("<out-of-schema>");
                    out.push(SemFinding {
                        kind: SemckKind::Unsatisfiable,
                        message: format!(
                            "{} can never fire: its `{}({name})` constraint is outside the \
                             function's value range",
                            label(polarity, i, rule, schema),
                            crate::ast::func_name(*func),
                        ),
                    });
                }
            }
        }
    }

    // Conflicts: a pos/neg pair sharing dimensions, all of them
    // intersecting. Rules already unsatisfiable are skipped — they can
    // never fire, so they cannot conflict.
    for (i, (p, pdims)) in positive.iter().zip(&pos_regions).enumerate() {
        if pdims.iter().any(|(_, iv)| iv.is_empty()) {
            continue;
        }
        for (j, (n, ndims)) in negative.iter().zip(&neg_regions).enumerate() {
            if ndims.iter().any(|(_, iv)| iv.is_empty()) {
                continue;
            }
            let shared: Vec<_> = pdims
                .iter()
                .filter_map(|(d, piv)| {
                    ndims.iter().find(|(nd, _)| nd == d).map(|(_, niv)| (*d, *piv, *niv))
                })
                .collect();
            if !shared.is_empty() && shared.iter().all(|(_, a, b)| a.intersects(*b)) {
                let dims: Vec<String> = shared
                    .iter()
                    .map(|((attr, func), _, _)| {
                        let name = schema
                            .attrs()
                            .get(*attr)
                            .map(|a| a.name.as_str())
                            .unwrap_or("<out-of-schema>");
                        format!("{}({name})", crate::ast::func_name(*func))
                    })
                    .collect();
                out.push(SemFinding {
                    kind: SemckKind::Conflict,
                    message: format!(
                        "{} and {} can fire on the same pair: their {} ranges overlap, so \
                         whether such a pair links or flags depends on evaluation order",
                        label(Polarity::Positive, i, p, schema),
                        label(Polarity::Negative, j, n, schema),
                        dims.join(", "),
                    ),
                });
            }
        }
    }

    // Subsumption within each polarity: wider ⊇ narrower on every
    // dimension the wider rule constrains → the narrower rule is dead.
    for (polarity, rules, regions) in
        [(Polarity::Positive, positive, &pos_regions), (Polarity::Negative, negative, &neg_regions)]
    {
        for (i, (wide_rule, wider)) in rules.iter().zip(regions.iter()).enumerate() {
            for (j, (narrow_rule, narrower)) in rules.iter().zip(regions.iter()).enumerate() {
                if i == j || wide_rule == narrow_rule && i > j {
                    continue; // exact duplicates report once, (i, j) with i < j
                }
                let covers = wider
                    .iter()
                    .all(|(d, wiv)| narrower.iter().any(|(nd, niv)| nd == d && wiv.contains(*niv)));
                if covers && !wider.is_empty() {
                    out.push(SemFinding {
                        kind: SemckKind::Subsumption,
                        message: format!(
                            "{} is subsumed by {}: every pair it fires on already fires the \
                             wider rule, so it is dead weight",
                            label(polarity, j, narrow_rule, schema),
                            label(polarity, i, wide_rule, schema),
                        ),
                    });
                }
            }
        }
    }

    out
}

/// Convenience wrapper over a [`CompiledSpec`].
pub fn semck_spec(spec: &CompiledSpec, schema: &Schema) -> Vec<SemFinding> {
    semck_rules(&spec.positive, &spec.negative, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_str;
    use dime_text::TokenizerKind;

    fn schema() -> Schema {
        Schema::new([
            ("Authors", TokenizerKind::List(',')),
            ("Title", TokenizerKind::Words),
            ("Venue", TokenizerKind::Whole),
        ])
    }

    fn check(src: &str) -> Vec<SemFinding> {
        let c = compile_str("t", src, &schema()).unwrap();
        semck_spec(&c, &schema())
    }

    #[test]
    fn clean_spec_has_no_findings() {
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 3.\n\
             diff(X, Y) :- overlap(Authors) <= 0.",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn overlapping_same_diff_pair_is_a_conflict() {
        // overlap(Authors) ∈ [1, 2] satisfies both rules.
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 1.\n\
             diff(X, Y) :- overlap(Authors) <= 2.",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Conflict);
        assert!(findings[0].message.contains("same rule 0"), "{}", findings[0].message);
        assert!(findings[0].message.contains("diff rule 0"), "{}", findings[0].message);
        assert!(findings[0].message.contains("overlap(Authors) >= 1"), "{}", findings[0].message);
        assert!(findings[0].message.contains("overlap(Authors) <= 2"), "{}", findings[0].message);
    }

    #[test]
    fn touching_boundaries_still_conflict() {
        // overlap == 2 fires both: intervals are closed.
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 2.\n\
             diff(X, Y) :- overlap(Authors) <= 2.",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, SemckKind::Conflict);
    }

    #[test]
    fn disjoint_thresholds_do_not_conflict() {
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 3.\n\
             diff(X, Y) :- overlap(Authors) <= 1.",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn disjoint_dimensions_do_not_conflict() {
        // Different attributes: normal spec shape, precedence handles it.
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 1.\n\
             diff(X, Y) :- jaccard(Title) <= 0.9.",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn one_disjoint_shared_dimension_clears_the_conflict() {
        // Authors ranges overlap, but the shared Title dimension is
        // disjoint ([0.8, 1] vs [0, 0.2]) — no pair fires both.
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 1, jaccard(Title) >= 0.8.\n\
             diff(X, Y) :- overlap(Authors) <= 2, jaccard(Title) <= 0.2.",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn narrower_rule_is_subsumed() {
        let findings = check(
            "diff(X, Y) :- overlap(Authors) <= 1.\n\
             diff(X, Y) :- overlap(Authors) <= 0, edit_sim(Title) <= 0.3.",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Subsumption);
        assert!(findings[0].message.contains("diff rule 1"), "{}", findings[0].message);
        assert!(findings[0].message.contains("subsumed by diff rule 0"), "{}", findings[0].message);
    }

    #[test]
    fn exact_duplicates_report_once() {
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 2.\n\
             same(X, Y) :- overlap(Authors) >= 2.",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Subsumption);
    }

    #[test]
    fn distinct_same_polarity_rules_are_kept() {
        let findings = check(
            "same(X, Y) :- overlap(Authors) >= 2.\n\
             same(X, Y) :- jaccard(Title) >= 0.8.",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn out_of_range_threshold_is_unsatisfiable() {
        let findings = check("same(X, Y) :- jaccard(Title) >= 1.5.");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Unsatisfiable);
        assert!(findings[0].message.contains("jaccard(Title)"), "{}", findings[0].message);
    }

    #[test]
    fn whole_tokenizer_caps_overlap_at_one() {
        // Venue is `Whole`: one token per entity, overlap ∈ [0, 1].
        let findings = check("same(X, Y) :- overlap(Venue) >= 2.");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Unsatisfiable);
        // On a List attribute the same threshold is fine.
        assert!(check("same(X, Y) :- overlap(Authors) >= 2.").is_empty());
    }

    #[test]
    fn unsatisfiable_rules_do_not_also_conflict() {
        let findings = check(
            "same(X, Y) :- jaccard(Title) >= 1.5.\n\
             diff(X, Y) :- jaccard(Title) <= 0.9.",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Unsatisfiable);
    }

    #[test]
    fn edit_distance_dimensions_conflict_too() {
        // same: edit_dist <= 3; diff: edit_dist >= 2 — [2, 3] fires both.
        let findings = check(
            "same(X, Y) :- edit_dist(Title) <= 3.\n\
             diff(X, Y) :- edit_dist(Title) >= 2.",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, SemckKind::Conflict);
    }
}
